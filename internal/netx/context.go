package netx

import (
	"context"
	"net"
	"sync"
	"time"
)

// DialContext dials addr on nw, honoring ctx: a cancelled or expired
// context aborts the dial and returns ctx.Err(). Network implementations
// take no context themselves (the virtual network resolves dials in
// virtual time, real TCP in the kernel), so the dial runs on its own
// goroutine and a late success against a cancelled context is closed
// instead of leaked.
func DialContext(ctx context.Context, nw Network, addr string) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ctx.Done() == nil {
		return nw.Dial(addr)
	}
	type result struct {
		conn net.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := nw.Dial(addr)
		ch <- result{conn, err}
	}()
	select {
	case r := <-ch:
		return r.conn, r.err
	case <-ctx.Done():
		go func() {
			if r := <-ch; r.conn != nil {
				r.conn.Close()
			}
		}()
		return nil, ctx.Err()
	}
}

// Guard ties an open connection to a context: the connection's deadline is
// derived from the context's (a no-op on virtual connections, which ignore
// deadlines), and a watcher closes the connection the moment ctx is
// cancelled — unblocking any read or write in flight, on both the real and
// the virtual substrate. The returned release stops the watcher and must
// be called when the exchange is over (defer it right after Guard).
func Guard(ctx context.Context, conn net.Conn) (release func()) {
	if d, ok := ctx.Deadline(); ok {
		conn.SetDeadline(d)
	} else {
		// A persistent connection may carry a deadline from an earlier
		// exchange; this exchange has none, so clear it.
		conn.SetDeadline(time.Time{})
	}
	if ctx.Done() == nil {
		return func() {}
	}
	released := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// A release that happened before the cancellation wins even
			// when the select saw both channels ready: the exchange is
			// over and the connection must not be torn down under its
			// next owner.
			select {
			case <-released:
			default:
				conn.Close()
			}
		case <-released:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(released) }) }
}
