// Package netx abstracts the overlay's transport substrate: the live stack
// dials and listens through a Network, which is backed either by the real
// TCP stack or by an in-memory virtual network with per-link latency,
// jitter and failure injection (in the spirit of pion's vnet). Swapping the
// backing — together with a virtual clock from internal/clock — turns the
// real node code into a deterministic, millisecond-fast cluster scenario.
package netx

import (
	"net"
	"sync"
)

// Network provides listeners and outbound connections. Implementations
// return net.Listener / net.Conn so protocol code is written once against
// the standard interfaces.
type Network interface {
	// Listen opens a listener on addr ("host:port"; port 0 or an empty
	// address picks one).
	Listen(addr string) (net.Listener, error)
	// Dial opens a stream connection to addr.
	Dial(addr string) (net.Conn, error)
}

// System is the real TCP network.
var System Network = TCP{}

// TCP implements Network over the operating system's TCP stack.
type TCP struct{}

// Listen opens a real TCP listener; an empty addr means "127.0.0.1:0".
func (TCP) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return net.Listen("tcp", addr)
}

// Dial opens a real TCP connection.
func (TCP) Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// Or returns n, or the real TCP network when n is nil — the idiom for
// optional Network fields in configuration structs.
func Or(n Network) Network {
	if n == nil {
		return System
	}
	return n
}

// ServeConns runs the accept/track/drain loop shared by every listening
// component (directory server, node, chord peer): each accepted
// connection is handed to handle on its own goroutine, tracked in conns
// under mu so the owner's Close can abort in-flight exchanges, and
// counted on wg. A connection that loses the race against the owner's
// Close — accepted after *closed is set, when Close has already
// snapshotted conns — is refused, and the loop drains until the dying
// listener surfaces the close as an Accept error, which is returned.
func ServeConns(l net.Listener, mu *sync.Mutex, closed *bool, conns map[net.Conn]struct{}, wg *sync.WaitGroup, handle func(net.Conn)) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		mu.Lock()
		if *closed {
			mu.Unlock()
			conn.Close()
			continue
		}
		conns[conn] = struct{}{}
		wg.Add(1)
		mu.Unlock()
		go func() {
			defer wg.Done()
			defer func() {
				conn.Close()
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
			}()
			handle(conn)
		}()
	}
}
