package netx

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"p2pstream/internal/clock"
)

// TestVirtualLossDelaysDelivery: chunk loss on a reliable stream shows up
// as retransmission delay, never as corruption — a Loss=0.5 link delivers
// the same bytes as a clean one, measurably later.
func TestVirtualLossDelaysDelivery(t *testing.T) {
	elapsed := func(cfg LinkConfig) time.Duration {
		a, b, clk := virtualPair(t, cfg)
		defer a.Close()
		defer b.Close()
		t0 := clk.Now()
		go func() {
			for i := 0; i < 32; i++ {
				a.Write([]byte{byte(i)})
			}
			a.Close()
		}()
		got, err := io.ReadAll(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 32 {
			t.Fatalf("lossy stream delivered %d bytes, want 32", len(got))
		}
		for i, by := range got {
			if by != byte(i) {
				t.Fatalf("byte %d corrupted: %d", i, by)
			}
		}
		return clk.Since(t0)
	}
	clean := elapsed(LinkConfig{Latency: time.Millisecond})
	lossy := elapsed(LinkConfig{Latency: time.Millisecond, Loss: 0.5})
	if lossy <= clean {
		t.Errorf("lossy stream took %v, clean %v; want lossy > clean", lossy, clean)
	}
}

// TestVirtualBlockedLink: a Blocked link refuses new dials but leaves the
// established connection streaming; re-configuring the link heals it.
func TestVirtualBlockedLink(t *testing.T) {
	clk := clock.NewVirtual()
	stop := clk.AutoRun()
	defer stop()
	v := NewVirtual(clk, 1)
	l, err := v.Host("b").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	a, err := v.Host("a").Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	v.SetLink("a", "b", LinkConfig{Latency: time.Millisecond, Blocked: true})
	if _, err := v.Host("a").Dial(addr); err == nil {
		t.Error("dial over a blocked link succeeded")
	}
	// The pre-partition connection still works.
	if _, err := a.Write([]byte("ok")); err != nil {
		t.Fatalf("write on pre-partition conn: %v", err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(a, buf); err != nil {
		t.Fatalf("echo through pre-partition conn: %v", err)
	}
	// Heal.
	v.SetLink("a", "b", LinkConfig{Latency: time.Millisecond})
	c2, err := v.Host("a").Dial(addr)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Close()
}

// TestVirtualScheduledLinkMutation: ScheduleLink and ScheduleDefaultLink
// fire at their virtual instants — a dial before the scheduled block
// succeeds, a dial after it is refused, and the healed default applies.
func TestVirtualScheduledLinkMutation(t *testing.T) {
	clk := clock.NewVirtual()
	stop := clk.AutoRun()
	defer stop()
	v := NewVirtual(clk, 1)
	v.SetDefaultLink(LinkConfig{Latency: time.Millisecond})
	l, err := v.Host("b").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	v.ScheduleLink(50*time.Millisecond, "a", "b", LinkConfig{Blocked: true})
	v.ScheduleDefaultLink(100*time.Millisecond, LinkConfig{Latency: 9 * time.Millisecond})

	if _, err := v.Host("a").Dial(addr); err != nil {
		t.Fatalf("dial before scheduled block: %v", err)
	}
	clk.Sleep(60 * time.Millisecond)
	if _, err := v.Host("a").Dial(addr); err == nil {
		t.Error("dial after scheduled block succeeded")
	}
	clk.Sleep(60 * time.Millisecond)
	// The a-b override still blocks; an unconfigured pair uses the new
	// 9ms default.
	if _, err := v.Host("a").Dial(addr); err == nil {
		t.Error("scheduled default overrode the per-link block")
	}
	t0 := clk.Now()
	conn, err := v.Host("c").Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != io.EOF {
		t.Fatalf("read = %v, want EOF from accept-and-close server", err)
	}
	if d := clk.Since(t0); d < 9*time.Millisecond {
		t.Errorf("post-schedule dial+close round took %v, want >= 9ms", d)
	}
}

// TestVirtualSetUpRevivesHost: after a crash, SetUp lets the host listen
// and be dialed again — the rejoin half of a churn schedule.
func TestVirtualSetUpRevivesHost(t *testing.T) {
	clk := clock.NewVirtual()
	stop := clk.AutoRun()
	defer stop()
	v := NewVirtual(clk, 1)
	l, err := v.Host("b").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	v.SetDown("b")
	if _, err := v.Host("b").Listen(":0"); err == nil {
		t.Fatal("listen on crashed host succeeded")
	}
	v.SetUp("b")
	l2, err := v.Host("b").Listen(":0")
	if err != nil {
		t.Fatalf("listen after SetUp: %v", err)
	}
	accepted := make(chan struct{})
	go func() {
		if c, err := l2.Accept(); err == nil {
			c.Close()
			close(accepted)
		}
	}()
	if _, err := v.Host("a").Dial(l2.Addr().String()); err != nil {
		t.Fatalf("dial after SetUp: %v", err)
	}
	select {
	case <-accepted:
	case <-time.After(10 * time.Second):
		t.Fatal("revived host never accepted")
	}
}

// TestVirtualLinkMutationWhileActive is the race-focused stress for the
// scenario harness's scheduled link mutation: four clients stream echoes
// through the network while a mutator rewrites per-link and default
// configurations (latency, jitter, loss, dial drop, block/heal)
// concurrently. Run under -race; the assertion is byte-exact delivery on
// every connection that got through, with progress on every host.
func TestVirtualLinkMutationWhileActive(t *testing.T) {
	clk := clock.NewVirtual()
	stop := clk.AutoRun()
	defer stop()
	v := NewVirtual(clk, 42)
	v.SetDefaultLink(LinkConfig{Latency: 200 * time.Microsecond})

	l, err := v.Host("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	addr := l.Addr().String()

	const clients = 4
	const rounds = 12
	done := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		host := fmt.Sprintf("h%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for attempt := 0; attempt < 200; attempt++ {
					conn, err := v.Host(host).Dial(addr)
					if err != nil {
						// Blocked or dropped; back off and retry.
						clk.Sleep(time.Millisecond)
						continue
					}
					msg := []byte(fmt.Sprintf("%s-%02d", host, r))
					if _, err := conn.Write(msg); err != nil {
						conn.Close()
						clk.Sleep(time.Millisecond)
						continue
					}
					buf := make([]byte, len(msg))
					if _, err := io.ReadFull(conn, buf); err != nil {
						conn.Close()
						clk.Sleep(time.Millisecond)
						continue
					}
					if string(buf) != string(msg) {
						t.Errorf("client %s round %d: echo %q, want %q", host, r, buf, msg)
					}
					conn.Close()
					done[i]++
					break
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		configs := []LinkConfig{
			{Latency: time.Millisecond, Jitter: 500 * time.Microsecond},
			{Latency: 100 * time.Microsecond, Loss: 0.3},
			{Latency: 300 * time.Microsecond, DropDial: 0.5},
			{Latency: 200 * time.Microsecond, Blocked: true},
			{Latency: 200 * time.Microsecond},
		}
		for r := 0; r < 40; r++ {
			host := fmt.Sprintf("h%d", r%clients)
			v.SetLink(host, "srv", configs[r%len(configs)])
			if r%5 == 4 {
				v.SetDefaultLink(configs[r%len(configs)])
			}
			v.ScheduleLink(time.Millisecond, host, "srv", configs[(r+1)%len(configs)])
			clk.Sleep(time.Millisecond)
		}
		// Leave every link healthy so the clients can finish.
		for i := 0; i < clients; i++ {
			v.SetLink(fmt.Sprintf("h%d", i), "srv", LinkConfig{Latency: 200 * time.Microsecond})
		}
		v.SetDefaultLink(LinkConfig{Latency: 200 * time.Microsecond})
	}()
	wg.Wait()
	for i, n := range done {
		if n == 0 {
			t.Errorf("client h%d completed no echo rounds", i)
		}
	}
}
