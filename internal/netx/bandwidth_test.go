package netx

import (
	"io"
	"net"
	"testing"
	"time"

	"p2pstream/internal/clock"
)

// TestBandwidthSerializationDelay: one chunk over a Bandwidth link arrives
// after latency + serialization time, not just latency.
func TestBandwidthSerializationDelay(t *testing.T) {
	// 1000 bytes at 10 kB/s = 100ms serialization, + 5ms latency.
	a, b, clk := virtualPair(t, LinkConfig{
		Latency:   5 * time.Millisecond,
		Bandwidth: 10_000,
	})
	defer a.Close()
	defer b.Close()

	t0 := clk.Now()
	if _, err := a.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	d := clk.Since(t0)
	if d < 105*time.Millisecond {
		t.Errorf("delivery took %v, want >= 105ms (serialization + latency)", d)
	}
	if d > 150*time.Millisecond {
		t.Errorf("delivery took %v, want ~105ms", d)
	}
}

// TestBandwidthSharedBottleneck: two flows into the same destination host
// share its ingress queue — their chunks serialize one after the other, so
// the pair takes roughly twice one flow's time.
func TestBandwidthSharedBottleneck(t *testing.T) {
	clk := clock.NewVirtual()
	stop := clk.AutoRun()
	defer stop()
	v := NewVirtual(clk, 7)
	v.SetDefaultLink(LinkConfig{Latency: time.Millisecond, Bandwidth: 10_000})
	l, err := v.Host("sink").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		n   int
		err error
	}
	done := make(chan res, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := l.Accept()
			if err != nil {
				done <- res{0, err}
				return
			}
			go func(c net.Conn) {
				n, err := io.Copy(io.Discard, c)
				if err == nil || err == io.EOF {
					done <- res{int(n), nil}
				} else {
					done <- res{int(n), err}
				}
			}(c)
		}
	}()
	t0 := clk.Now()
	for _, src := range []string{"a", "b"} {
		c, err := v.Host(src).Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		go func(c net.Conn) {
			c.Write(make([]byte, 1000)) // 100ms of serialization each
			c.Close()
		}(c)
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-done:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if r.n != 1000 {
				t.Errorf("flow drained %d bytes, want 1000", r.n)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("flows never drained")
		}
	}
	if d := clk.Since(t0); d < 200*time.Millisecond {
		t.Errorf("two shared flows drained in %v, want >= 200ms (serialized)", d)
	}
}

// TestBandwidthNamedBottleneckGroup: links naming the same Bottleneck group
// share one queue even when their destination hosts differ.
func TestBandwidthNamedBottleneckGroup(t *testing.T) {
	clk := clock.NewVirtual()
	stop := clk.AutoRun()
	defer stop()
	v := NewVirtual(clk, 7)
	core := LinkConfig{Latency: time.Millisecond, Bandwidth: 10_000, Bottleneck: "core"}
	v.SetLink("a", "x", core)
	v.SetLink("b", "y", core)
	drained := make(chan time.Time, 2)
	for _, dst := range []string{"x", "y"} {
		l, err := v.Host(dst).Listen(":0")
		if err != nil {
			t.Fatal(err)
		}
		go func(l net.Listener) {
			c, err := l.Accept()
			if err != nil {
				return
			}
			io.Copy(io.Discard, c)
			drained <- clk.Now()
		}(l)
		src := "a"
		if dst == "y" {
			src = "b"
		}
		c, err := v.Host(src).Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		go func(c net.Conn) {
			c.Write(make([]byte, 1000))
			c.Close()
		}(c)
	}
	t0 := clk.Now()
	var last time.Time
	for i := 0; i < 2; i++ {
		select {
		case at := <-drained:
			if at.After(last) {
				last = at
			}
		case <-time.After(10 * time.Second):
			t.Fatal("flows never drained")
		}
	}
	if d := last.Sub(t0); d < 200*time.Millisecond {
		t.Errorf("grouped flows drained in %v, want >= 200ms (one shared queue)", d)
	}
}

// TestBandwidthQueueTailDrop: flooding a bounded queue records drops and
// the dropped chunks pay a retransmission round rather than vanishing (the
// stream stays reliable).
func TestBandwidthQueueTailDrop(t *testing.T) {
	clk := clock.NewVirtual()
	stop := clk.AutoRun()
	defer stop()
	v := NewVirtual(clk, 7)
	// 10 kB/s with a 500-byte queue: 50ms of standing queue allowed.
	v.SetDefaultLink(LinkConfig{Latency: time.Millisecond, Bandwidth: 10_000, QueueBytes: 500})
	l, err := v.Host("sink").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	total := make(chan int, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		n, _ := io.Copy(io.Discard, c)
		total <- int(n)
	}()
	c, err := v.Host("a").Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Burst 40 chunks x 100 bytes = 4000 bytes = 400ms of serialization
	// into a 50ms queue: most of the burst must tail-drop.
	for i := 0; i < 40; i++ {
		if _, err := c.Write(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	select {
	case n := <-total:
		if n != 4000 {
			t.Errorf("drained %d bytes, want 4000 (reliable stream)", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("burst never drained")
	}
	if d := v.QueueDrops(); d == 0 {
		t.Error("flooding a bounded queue recorded no drops")
	}
}

// TestBandwidthZeroUnchanged: Bandwidth-zero links never touch the
// bottleneck machinery — delivery is latency-only, and no drops or queues
// appear.
func TestBandwidthZeroUnchanged(t *testing.T) {
	a, b, clk := virtualPair(t, LinkConfig{Latency: 2 * time.Millisecond})
	defer a.Close()
	defer b.Close()
	t0 := clk.Now()
	if _, err := a.Write(make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if d := clk.Since(t0); d > 3*time.Millisecond {
		t.Errorf("64KB over a Bandwidth=0 link took %v, want ~2ms", d)
	}
	if v, ok := a.(*vConn); ok && v.btl != nil {
		t.Error("Bandwidth=0 conn resolved a bottleneck")
	}
}

// TestDialCounter: every dial attempt is counted.
func TestDialCounter(t *testing.T) {
	clk := clock.NewVirtual()
	stop := clk.AutoRun()
	defer stop()
	v := NewVirtual(clk, 1)
	l, err := v.Host("b").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	for i := 0; i < 3; i++ {
		c, err := v.Host("a").Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	v.Host("a").Dial("nobody:9") // refused attempts count too
	if got := v.Dials(); got != 4 {
		t.Errorf("Dials() = %d, want 4", got)
	}
}
