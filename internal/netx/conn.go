package netx

import (
	"net"
	"sync"
	"time"
)

// vConn is one end of a virtual stream connection. Writes copy the chunk
// and schedule its delivery into the peer's inbox after the link delay;
// per-connection FIFO order is preserved even under jitter. Streams are
// reliable, like TCP: dial drops and host crashes fail connections, while
// per-chunk loss (LinkConfig.Loss) surfaces as retransmission delay, never
// as corruption.
type vConn struct {
	v             *Virtual
	local, remote vAddr
	inbox         *inbox
	peer          *vConn

	mu         sync.Mutex
	closed     bool
	peerClosed bool // peer ended the connection: writes fail like EPIPE
}

func newConn(v *Virtual, local, remote vAddr) *vConn {
	c := &vConn{v: v, local: local, remote: remote, inbox: newInbox(v.waker)}
	return c
}

func (c *vConn) Read(p []byte) (int, error) { return c.inbox.read(p) }

func (c *vConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	closed, peerClosed := c.closed, c.peerClosed
	c.mu.Unlock()
	if closed {
		return 0, &net.OpError{Op: "write", Net: "virtual", Addr: c.remote, Err: net.ErrClosed}
	}
	if peerClosed {
		// The peer hung up: like a TCP stream after FIN/RST, further
		// writes fail instead of streaming into the void (the supplier
		// relies on this to abort cancelled sessions).
		return 0, &net.OpError{Op: "write", Net: "virtual", Addr: c.remote, Err: errConnReset}
	}
	if c.inbox.failed() {
		// The connection was torn down (peer crash): writing into it fails
		// like a reset TCP stream.
		return 0, &net.OpError{Op: "write", Net: "virtual", Addr: c.remote, Err: errConnReset}
	}
	data := append([]byte(nil), p...)
	c.schedule(data, false)
	return len(p), nil
}

// schedule queues one chunk (or, with eof, a graceful end-of-stream mark)
// for delivery into the peer's inbox after the link delay.
func (c *vConn) schedule(data []byte, eof bool) {
	v := c.v
	v.mu.Lock()
	link := v.linkLocked(c.local.host, c.remote.host)
	delay := v.delayLocked(link)
	v.mu.Unlock()

	in := c.peer.inbox
	now := v.clk.Now()
	at := now.Add(delay)
	in.mu.Lock()
	if at.Before(in.lastAt) {
		at = in.lastAt // FIFO: never overtake an earlier chunk
	}
	in.lastAt = at
	in.mu.Unlock()
	v.clk.AfterFunc(at.Sub(now), func() { in.deliver(data, eof) })
}

// Close closes this end: local reads fail immediately, the peer's reads —
// like a TCP FIN — see io.EOF after every in-flight chunk has been
// delivered, and the peer's writes fail from now on.
func (c *vConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.peer.mu.Lock()
	c.peer.peerClosed = true
	c.peer.mu.Unlock()
	c.inbox.fail(net.ErrClosed)
	c.schedule(nil, true)
	c.v.drop(c)
	return nil
}

func (c *vConn) LocalAddr() net.Addr  { return c.local }
func (c *vConn) RemoteAddr() net.Addr { return c.remote }

// Deadlines are accepted and ignored: the overlay's wire protocol does not
// use them, and virtual time makes real-time deadlines meaningless.
func (c *vConn) SetDeadline(time.Time) error      { return nil }
func (c *vConn) SetReadDeadline(time.Time) error  { return nil }
func (c *vConn) SetWriteDeadline(time.Time) error { return nil }

// inbox is the receive side of one connection end.
type inbox struct {
	waker waker

	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
	// lastAt orders scheduled deliveries (guarded by mu; virtual instants).
	lastAt time.Time
	eof    bool  // graceful peer close, surfaced after buffered data
	dead   error // hard failure (local close, peer crash): immediate
	// waiting counts blocked readers; wakes counts deliveries that
	// unblocked one and have not yet been consumed (advance gating).
	waiting int
	wakes   int
}

func newInbox(w waker) *inbox {
	in := &inbox{waker: w}
	in.cond = sync.NewCond(&in.mu)
	return in
}

// deliver lands one chunk (or the end-of-stream mark) in the buffer. It
// runs on the clock's advancing goroutine.
func (in *inbox) deliver(data []byte, eof bool) {
	in.mu.Lock()
	if in.dead != nil {
		in.mu.Unlock()
		return
	}
	if eof {
		in.eof = true
	} else {
		in.buf = append(in.buf, data...)
	}
	if in.waiting > 0 && in.waker != nil {
		// Hold further advances until the reader consumed this.
		in.wakes++
		in.waker.NoteWake()
	}
	in.cond.Broadcast()
	in.mu.Unlock()
}

// fail kills the inbox immediately: blocked and future reads return err.
func (in *inbox) fail(err error) {
	in.mu.Lock()
	if in.dead == nil {
		in.dead = err
	}
	in.cond.Broadcast()
	in.mu.Unlock()
}

func (in *inbox) failed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dead != nil && in.dead != net.ErrClosed
}

func (in *inbox) read(p []byte) (int, error) {
	in.mu.Lock()
	for len(in.buf) == 0 && !in.eof && in.dead == nil {
		in.waiting++
		in.cond.Wait()
		in.waiting--
	}
	retire := false
	if in.wakes > 0 {
		in.wakes--
		retire = true
	}
	var n int
	var err error
	switch {
	case in.dead != nil:
		err = in.dead
	case len(in.buf) > 0:
		n = copy(p, in.buf)
		in.buf = in.buf[n:]
	default:
		err = errEOF
	}
	in.mu.Unlock()
	if retire && in.waker != nil {
		in.waker.WakeDone()
	}
	return n, err
}
