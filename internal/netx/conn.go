package netx

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"p2pstream/internal/clock"
)

// vConn is one end of a virtual stream connection. Writes copy the chunk
// once, into a pooled buffer, and schedule its delivery into the peer's
// inbox after the link delay; per-connection FIFO order is preserved even
// under jitter. Streams are reliable, like TCP: dial drops and host crashes
// fail connections, while per-chunk loss (LinkConfig.Loss) surfaces as
// retransmission delay, never as corruption.
type vConn struct {
	v             *Virtual
	local, remote vAddr
	inbox         *inbox
	peer          *vConn

	// Writer-side state, guarded by peer.inbox.mu (every schedule holds
	// it): the jitter/loss stream and the resolved link config, cached
	// behind the network's link epoch so the steady-state send path never
	// touches a shared table.
	rng       linkRNG
	linkEpoch uint64
	link      LinkConfig
	btl       *bottleneck // resolved with link; non-nil iff Bandwidth > 0

	closed     atomic.Bool
	peerClosed atomic.Bool // peer ended the connection: writes fail like EPIPE
}

// connPair is both ends of one virtual connection plus their inboxes, laid
// out as a single allocation: the dial path runs a quarter-million times in
// a population-scale crowd, and four heap objects per dial (two conns, two
// inboxes, plus their conds) were a double-digit share of its CPU.
type connPair struct {
	a, b   vConn
	ai, bi inbox
}

func newConnPair(v *Virtual, local, remote vAddr) (*vConn, *vConn) {
	p := new(connPair)
	p.a = vConn{v: v, local: local, remote: remote, inbox: &p.ai, peer: &p.b}
	p.b = vConn{v: v, local: remote, remote: local, inbox: &p.bi, peer: &p.a}
	initInbox(&p.ai, v.clk, v.waker)
	initInbox(&p.bi, v.clk, v.waker)
	return &p.a, &p.b
}

func (c *vConn) Read(p []byte) (int, error) { return c.inbox.read(p) }

func (c *vConn) Write(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, &net.OpError{Op: "write", Net: "virtual", Addr: c.remote, Err: net.ErrClosed}
	}
	if c.peerClosed.Load() {
		// The peer hung up: like a TCP stream after FIN/RST, further
		// writes fail instead of streaming into the void (the supplier
		// relies on this to abort cancelled sessions).
		return 0, &net.OpError{Op: "write", Net: "virtual", Addr: c.remote, Err: errConnReset}
	}
	if c.inbox.hardFail.Load() {
		// The connection was torn down (peer crash): writing into it fails
		// like a reset TCP stream.
		return 0, &net.OpError{Op: "write", Net: "virtual", Addr: c.remote, Err: errConnReset}
	}
	if len(p) == 0 {
		return 0, nil
	}
	c.schedule(p, false)
	return len(p), nil
}

// schedule queues one chunk (or, with eof, a graceful end-of-stream mark)
// for delivery into the peer's inbox after the link delay. It takes the
// single pooled copy of data up front — the caller keeps ownership of data
// and may reuse it as soon as schedule returns. Chunks whose delay has
// already elapsed are deposited inline; later ones join the inbox's pending
// list, covered by at most one flush timer per inbox regardless of depth.
func (c *vConn) schedule(data []byte, eof bool) {
	now := c.v.clk.Now()
	ch := newChunk(data, eof)
	in := c.peer.inbox
	in.mu.Lock()
	if in.dead != nil {
		in.mu.Unlock()
		ch.recycle()
		return
	}
	if e := c.v.epoch.Load(); e != c.linkEpoch {
		c.link = c.v.linkFor(c.local.host, c.remote.host)
		c.linkEpoch = e
		c.btl = nil
		if c.link.Bandwidth > 0 {
			c.btl = c.v.bottleneckFor(c.link.Bottleneck, c.remote.host)
		}
	}
	at := now
	if c.btl != nil && len(data) > 0 {
		// Serialization through the shared bottleneck: queue wait behind
		// earlier chunks, transmission time, tail-drop retransmission.
		d, dropped := c.btl.delay(&c.link, len(data), now)
		at = at.Add(d)
		if dropped {
			c.v.queueDrops.Add(1)
		}
	}
	if d := sampleDelay(c.link, &c.rng); d > 0 {
		at = at.Add(d)
	}
	if at.Before(in.lastAt) {
		at = in.lastAt // FIFO: never overtake an earlier chunk
	}
	in.lastAt = at
	ch.at = at
	if in.phead == nil && !at.After(now) {
		// Due already, with nothing in flight ahead of it: deliver inline,
		// without touching the timer heap at all.
		in.depositLocked(ch)
		in.cond.Broadcast()
		in.mu.Unlock()
		return
	}
	if in.ptail == nil {
		in.phead = ch
	} else {
		in.ptail.next = ch
	}
	in.ptail = ch
	if !in.armed {
		in.armed = true
		in.armedAt = at
		in.clk.AfterFunc(at.Sub(now), in.flushFn)
	}
	in.mu.Unlock()
}

// Close closes this end: local reads fail immediately, the peer's reads —
// like a TCP FIN — see io.EOF after every in-flight chunk has been
// delivered, and the peer's writes fail from now on.
func (c *vConn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.peer.peerClosed.Store(true)
	c.inbox.fail(net.ErrClosed)
	c.schedule(nil, true)
	c.v.drop(c)
	return nil
}

func (c *vConn) LocalAddr() net.Addr  { return c.local }
func (c *vConn) RemoteAddr() net.Addr { return c.remote }

// Deadlines are accepted and ignored: the overlay's wire protocol does not
// use them, and virtual time makes real-time deadlines meaningless.
func (c *vConn) SetDeadline(time.Time) error      { return nil }
func (c *vConn) SetReadDeadline(time.Time) error  { return nil }
func (c *vConn) SetWriteDeadline(time.Time) error { return nil }

// inbox is the receive side of one connection end: a pending list of
// in-flight chunks covered by a single flush timer, and a ready list of
// delivered chunks consumed (and recycled) by read.
type inbox struct {
	waker   waker
	clk     clock.Clock
	flushFn func() // bound once so re-arming allocates nothing per batch

	// hardFail mirrors "dead with a non-Close error" so the peer's write
	// path can check it without taking any lock.
	hardFail atomic.Bool

	mu   sync.Mutex
	cond sync.Cond
	// ready list: delivered chunks, readable now (roff = read offset into
	// rhead's data).
	rhead, rtail *chunk
	roff         int
	// pending list: scheduled chunks still in flight; at is non-decreasing
	// along the list (FIFO), so the head is always the earliest.
	phead, ptail *chunk
	// armed marks the one outstanding flush timer, due at armedAt.
	armed   bool
	armedAt time.Time
	// lastAt orders scheduled deliveries (virtual instants).
	lastAt time.Time
	eof    bool  // graceful peer close, surfaced after buffered data
	dead   error // hard failure (local close, peer crash): immediate
	// waiting counts blocked readers; wakes counts deliveries that
	// unblocked one and have not yet been consumed (advance gating).
	waiting int
	wakes   int
}

func initInbox(in *inbox, clk clock.Clock, w waker) {
	in.clk = clk
	in.waker = w
	in.cond.L = &in.mu
	in.flushFn = in.flush
}

// depositLocked moves one chunk from in flight to readable (or records the
// end-of-stream mark) and accounts the advance-gating wake. Callers hold
// in.mu and broadcast once after their last deposit.
func (in *inbox) depositLocked(ch *chunk) {
	if ch.eof {
		in.eof = true
		ch.recycle()
	} else {
		ch.next = nil
		if in.rtail == nil {
			in.rhead = ch
		} else {
			in.rtail.next = ch
		}
		in.rtail = ch
	}
	if in.waiting > 0 && in.waker != nil {
		// Hold further advances until the reader consumed this.
		in.wakes++
		in.waker.NoteWake()
	}
}

// flush delivers every pending chunk due at the instant the flush timer
// fired, then re-arms for the earliest remaining one. It runs on the
// clock's advancing goroutine with no clock lock held. The fire instant is
// carried in armedAt rather than read from the clock: Now() would count as
// reader activity and retire a wake gate that is not ours.
func (in *inbox) flush() {
	in.mu.Lock()
	now := in.armedAt
	in.armed = false
	if in.dead != nil {
		in.mu.Unlock()
		return
	}
	delivered := false
	for in.phead != nil && !in.phead.at.After(now) {
		ch := in.phead
		in.phead = ch.next
		if in.phead == nil {
			in.ptail = nil
		}
		in.depositLocked(ch)
		delivered = true
	}
	if in.phead != nil {
		in.armed = true
		in.armedAt = in.phead.at
		in.clk.AfterFunc(in.phead.at.Sub(now), in.flushFn)
	}
	if delivered {
		in.cond.Broadcast()
	}
	in.mu.Unlock()
}

// fail kills the inbox immediately: blocked and future reads return err,
// and every buffered or in-flight chunk is released back to the pool.
func (in *inbox) fail(err error) {
	in.mu.Lock()
	if in.dead == nil {
		in.dead = err
		if err != net.ErrClosed {
			in.hardFail.Store(true)
		}
		recycleChain(in.rhead)
		in.rhead, in.rtail, in.roff = nil, nil, 0
		recycleChain(in.phead)
		in.phead, in.ptail = nil, nil
	}
	in.cond.Broadcast()
	in.mu.Unlock()
}

func (in *inbox) read(p []byte) (int, error) {
	in.mu.Lock()
	for in.rhead == nil && !in.eof && in.dead == nil {
		in.waiting++
		in.cond.Wait()
		in.waiting--
	}
	retire := false
	if in.wakes > 0 {
		in.wakes--
		retire = true
	}
	var n int
	var err error
	switch {
	case in.dead != nil:
		err = in.dead
	case in.rhead != nil:
		for n < len(p) && in.rhead != nil {
			m := copy(p[n:], in.rhead.data[in.roff:])
			n += m
			in.roff += m
			if in.roff == len(in.rhead.data) {
				ch := in.rhead
				in.rhead = ch.next
				if in.rhead == nil {
					in.rtail = nil
				}
				in.roff = 0
				ch.recycle() // drained: release, do not pin burst memory
			}
		}
	default:
		err = errEOF
	}
	in.mu.Unlock()
	if retire && in.waker != nil {
		in.waker.WakeDone()
	}
	return n, err
}
