package media

import (
	"fmt"
	"sync"
)

// Library is a node's bounded multi-object cache: every media object the
// node holds (complete or mid-download), keyed by file name, under one
// byte budget. Admission of a new object reserves its full size up front
// (a mid-download object occupies its eventual footprint, so the budget
// can never be overrun by concurrent fills) and evicts least-recently-used
// objects to make room. Objects with live sessions are pinned (Acquire /
// Release) and are never evicted; an Add that cannot fit against pinned
// residents fails instead of overcommitting.
//
// Evictions are reported through the OnEvict callback — the node's
// graceful supplier-withdrawal hook (per-object unregister, observer
// event). The callback runs after the library's lock is released, so it
// may call back into the Library and may perform network I/O.
type Library struct {
	mu      sync.Mutex
	budget  int64 // 0 = unbounded
	used    int64
	entries map[string]*libEntry
	// Intrusive LRU list: head is most recently used, tail the eviction
	// candidate. The sentinel root keeps Get allocation-free.
	root      libEntry
	evictions int64
	onEvict   func(f *File)
}

// libEntry is one cached object and its LRU linkage.
type libEntry struct {
	prev, next *libEntry
	file       *File
	store      *Store
	bytes      int64
	pins       int
}

// NewLibrary returns an empty library with the given byte budget
// (0 = unbounded).
func NewLibrary(budget int64) *Library {
	l := &Library{budget: budget, entries: make(map[string]*libEntry)}
	l.root.prev = &l.root
	l.root.next = &l.root
	return l
}

// SetOnEvict installs the eviction callback. It is invoked once per
// evicted object, outside the library's lock, in eviction order.
func (l *Library) SetOnEvict(fn func(f *File)) {
	l.mu.Lock()
	l.onEvict = fn
	l.mu.Unlock()
}

// Budget returns the byte budget (0 = unbounded).
func (l *Library) Budget() int64 { return l.budget }

// Add admits an object, reserving its full TotalBytes against the budget
// and evicting least-recently-used unpinned objects as needed. It fails
// if the object alone exceeds the budget, if the name is already held, or
// if pinned residents leave no room.
func (l *Library) Add(f *File, s *Store) error {
	if f == nil || s == nil {
		return fmt.Errorf("media: library add needs a file and a store")
	}
	size := f.TotalBytes()
	l.mu.Lock()
	if _, ok := l.entries[f.Name]; ok {
		l.mu.Unlock()
		return fmt.Errorf("media: library already holds %q", f.Name)
	}
	if l.budget > 0 && size > l.budget {
		l.mu.Unlock()
		return fmt.Errorf("media: object %q (%d bytes) exceeds the library budget (%d bytes)", f.Name, size, l.budget)
	}
	var evicted []*File
	for l.budget > 0 && l.used+size > l.budget {
		victim := l.lruVictimLocked()
		if victim == nil {
			l.mu.Unlock()
			return fmt.Errorf("media: no room for %q: %d of %d budget bytes pinned by live sessions", f.Name, l.used, l.budget)
		}
		l.removeLocked(victim)
		l.evictions++
		evicted = append(evicted, victim.file)
	}
	e := &libEntry{file: f, store: s, bytes: size}
	l.entries[f.Name] = e
	l.pushFrontLocked(e)
	l.used += size
	fn := l.onEvict
	l.mu.Unlock()
	if fn != nil {
		for _, ef := range evicted {
			fn(ef)
		}
	}
	return nil
}

// Get returns the named object and marks it most recently used.
func (l *Library) Get(name string) (*File, *Store, bool) {
	l.mu.Lock()
	e, ok := l.entries[name]
	if !ok {
		l.mu.Unlock()
		return nil, nil, false
	}
	l.touchLocked(e)
	f, s := e.file, e.store
	l.mu.Unlock()
	return f, s, true
}

// Acquire is Get plus a pin: while pinned, the object cannot be evicted.
// Every successful Acquire must be paired with a Release.
func (l *Library) Acquire(name string) (*File, *Store, bool) {
	l.mu.Lock()
	e, ok := l.entries[name]
	if !ok {
		l.mu.Unlock()
		return nil, nil, false
	}
	e.pins++
	l.touchLocked(e)
	f, s := e.file, e.store
	l.mu.Unlock()
	return f, s, true
}

// Release undoes one Acquire. Releasing an evicted-impossible (still held)
// object is the normal path; releasing an unknown name is a no-op so a
// session racing a (never-possible) removal stays safe.
func (l *Library) Release(name string) {
	l.mu.Lock()
	if e, ok := l.entries[name]; ok && e.pins > 0 {
		e.pins--
	}
	l.mu.Unlock()
}

// Len returns the number of held objects.
func (l *Library) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// UsedBytes returns the bytes currently reserved against the budget.
func (l *Library) UsedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// Evictions returns the number of objects evicted so far.
func (l *Library) Evictions() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}

// Names returns the held object names, most recently used first.
func (l *Library) Names() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.entries))
	for e := l.root.next; e != &l.root; e = e.next {
		out = append(out, e.file.Name)
	}
	return out
}

// lruVictimLocked returns the least-recently-used unpinned entry, or nil.
func (l *Library) lruVictimLocked() *libEntry {
	for e := l.root.prev; e != &l.root; e = e.prev {
		if e.pins == 0 {
			return e
		}
	}
	return nil
}

func (l *Library) removeLocked(e *libEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	delete(l.entries, e.file.Name)
	l.used -= e.bytes
}

func (l *Library) pushFrontLocked(e *libEntry) {
	e.prev = &l.root
	e.next = l.root.next
	e.prev.next = e
	e.next.prev = e
}

func (l *Library) touchLocked(e *libEntry) {
	if l.root.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	l.pushFrontLocked(e)
}
