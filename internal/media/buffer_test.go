package media

import (
	"math/rand"
	"testing"
	"time"
)

func TestPlaybackBufferSmooth(t *testing.T) {
	f := testFile() // 8 segments, δt = 1s
	b, err := NewPlaybackBuffer(f, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < f.Segments; id++ {
		at := time.Duration(id+1) * time.Second // one segment per second
		if err := b.Push(SegmentID(id), at); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < f.Segments; id++ {
		onTime, err := b.Consume(SegmentID(id), time.Duration(id+1)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !onTime {
			t.Errorf("segment %d late", id)
		}
	}
	if b.Stalls() != 0 || b.Rebuffered() != 0 {
		t.Errorf("Stalls=%d Rebuffered=%v", b.Stalls(), b.Rebuffered())
	}
	if !b.Finished() {
		t.Error("not finished")
	}
}

func TestPlaybackBufferStallShiftsDeadlines(t *testing.T) {
	f := testFile()
	b, err := NewPlaybackBuffer(f, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Segment 0 arrives 3s late (at 4s vs deadline 1s): one stall, shift 3s.
	arrivals := []time.Duration{4 * time.Second}
	for id := 1; id < f.Segments; id++ {
		arrivals = append(arrivals, time.Duration(id+1)*time.Second)
	}
	for id, at := range arrivals {
		if err := b.Push(SegmentID(id), at); err != nil {
			t.Fatal(err)
		}
	}
	onTime, err := b.Consume(0, arrivals[0])
	if err != nil {
		t.Fatal(err)
	}
	if onTime {
		t.Fatal("segment 0 should stall")
	}
	if b.Rebuffered() != 3*time.Second {
		t.Errorf("Rebuffered = %v, want 3s", b.Rebuffered())
	}
	// After the shift, segment 1's deadline is 1s + 3s + 1s = 5s; it
	// arrived at 2s, so the rest of playback is smooth.
	for id := 1; id < f.Segments; id++ {
		onTime, err := b.Consume(SegmentID(id), arrivals[id])
		if err != nil {
			t.Fatal(err)
		}
		if !onTime {
			t.Errorf("segment %d late after shift", id)
		}
	}
	if b.Stalls() != 1 {
		t.Errorf("Stalls = %d, want 1", b.Stalls())
	}
}

func TestPlaybackBufferErrors(t *testing.T) {
	f := testFile()
	if _, err := NewPlaybackBuffer(&File{}, 0); err == nil {
		t.Error("invalid file should fail")
	}
	if _, err := NewPlaybackBuffer(f, -time.Second); err == nil {
		t.Error("negative delay should fail")
	}
	b, _ := NewPlaybackBuffer(f, 0)
	if err := b.Push(-1, 0); err == nil {
		t.Error("negative id should fail")
	}
	if err := b.Push(99, 0); err == nil {
		t.Error("out of range id should fail")
	}
	if err := b.Push(0, -time.Second); err == nil {
		t.Error("negative arrival should fail")
	}
	if err := b.Push(0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.Push(0, time.Second); err == nil {
		t.Error("duplicate push should fail")
	}
	if _, err := b.Consume(1, 0); err == nil {
		t.Error("out-of-order consume should fail")
	}
	if _, err := b.Consume(0, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Consume(1, 0); err == nil {
		t.Error("consuming an un-pushed segment should fail")
	}
}

// TestPlayAllAgreesWithVerifyPlayback: when the delay is sufficient for
// continuity, the streaming-order player and the post-hoc verifier agree;
// the player's first stall also matches.
func TestPlayAllAgreesWithVerifyPlayback(t *testing.T) {
	f := &File{Name: "t", Segments: 64, SegmentBytes: 1, SegmentTime: time.Second}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		arrivals := make([]time.Duration, f.Segments)
		for id := range arrivals {
			arrivals[id] = time.Duration(id)*f.SegmentTime + time.Duration(rng.Intn(5000))*time.Millisecond
		}
		delay := time.Duration(rng.Intn(6)) * f.SegmentTime
		post, err := VerifyPlayback(f, arrivals, delay)
		if err != nil {
			t.Fatal(err)
		}
		live, err := PlayAll(f, arrivals, delay)
		if err != nil {
			t.Fatal(err)
		}
		// Continuity agreement in both directions.
		if post.Continuous() != live.Continuous() {
			t.Fatalf("trial %d: post-hoc continuous=%v, streaming continuous=%v",
				trial, post.Continuous(), live.Continuous())
		}
		if !post.Continuous() && post.FirstStall != live.FirstStall {
			t.Fatalf("trial %d: first stall post=%d live=%d", trial, post.FirstStall, live.FirstStall)
		}
		// Stall shifting means the live player never reports MORE stalls
		// than the post-hoc verifier (later deadlines relax after a stall).
		if live.Stalls > post.Stalls {
			t.Fatalf("trial %d: live stalls %d > post-hoc %d", trial, live.Stalls, post.Stalls)
		}
	}
}

func TestPlayAllOTSSchedule(t *testing.T) {
	// The OTS arrival pattern (one segment per supplier-period) plays back
	// with zero stalls at exactly the Theorem 1 delay and stalls below it.
	f := &File{Name: "t", Segments: 16, SegmentBytes: 1, SegmentTime: time.Second}
	arrivals := make([]time.Duration, f.Segments)
	for id := range arrivals {
		arrivals[id] = time.Duration(id+1) * f.SegmentTime
	}
	report, err := PlayAll(f, arrivals, f.SegmentTime)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Continuous() {
		t.Error("should be continuous at the exact delay")
	}
	report, err = PlayAll(f, arrivals, 0)
	if err != nil {
		t.Fatal(err)
	}
	if report.Continuous() {
		t.Error("should stall below the minimal delay")
	}
	if report.FirstStall != 0 {
		t.Errorf("FirstStall = %d, want 0", report.FirstStall)
	}
}

func TestPlayAllErrors(t *testing.T) {
	f := testFile()
	if _, err := PlayAll(f, make([]time.Duration, 3), 0); err == nil {
		t.Error("wrong arrival count should fail")
	}
	if _, err := PlayAll(&File{}, nil, 0); err == nil {
		t.Error("invalid file should fail")
	}
}
