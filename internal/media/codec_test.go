package media

import (
	"bytes"
	"testing"
	"time"
)

func codecFile() *File {
	return &File{Name: "vbr", Segments: 16, SegmentBytes: 4096, SegmentTime: time.Second}
}

func TestSizeAtHalvesPerClass(t *testing.T) {
	f := codecFile()
	want := f.SegmentBytes
	for q := Quality(0); q <= MaxQuality; q++ {
		if got := f.SizeAt(q); got != want {
			t.Fatalf("SizeAt(%d) = %d, want %d", q, got, want)
		}
		want /= 2
	}
	tiny := &File{Name: "t", Segments: 1, SegmentBytes: 2, SegmentTime: time.Second}
	if got := tiny.SizeAt(MaxQuality); got != 1 {
		t.Fatalf("SizeAt on tiny segment = %d, want floor of 1", got)
	}
}

func TestPerfectCodecDeterministicAndDyadic(t *testing.T) {
	f := codecFile()
	var c PerfectCodec
	for q := Quality(0); q <= MaxQuality; q++ {
		a := c.EncodeAt(f, 3, q)
		b := c.EncodeAt(f, 3, q)
		if !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("q%d: two encodes differ", q)
		}
		if len(a.Data) != f.SizeAt(q) {
			t.Fatalf("q%d: size %d, want exactly %d", q, len(a.Data), f.SizeAt(q))
		}
		if a.Quality != q {
			t.Fatalf("q%d: segment tagged q%d", q, a.Quality)
		}
	}
	// Full quality matches the canonical content exactly.
	if !bytes.Equal(c.EncodeAt(f, 5, 0).Data, SegmentContent(f, 5).Data) {
		t.Fatal("q0 encode differs from canonical content")
	}
	// A downgraded rendition is a strict subsample of the full one.
	full := c.EncodeAt(f, 7, 0).Data
	down := c.EncodeAt(f, 7, 2).Data
	for i, b := range down {
		if b != full[i*4] {
			t.Fatalf("q2 byte %d = %d, want full[%d] = %d", i, b, i*4, full[i*4])
		}
	}
}

func TestStatisticalCodecJittersWithinBounds(t *testing.T) {
	f := codecFile()
	c := StatisticalCodec{Seed: 11}
	varied := false
	for id := SegmentID(0); id < SegmentID(f.Segments); id++ {
		for q := Quality(0); q <= MaxQuality; q++ {
			seg := c.EncodeAt(f, id, q)
			nominal := f.SizeAt(q)
			lo, hi := nominal-nominal/4, nominal+nominal/4
			if hi > f.SegmentBytes {
				hi = f.SegmentBytes
			}
			if lo < 1 {
				lo = 1
			}
			if len(seg.Data) < lo || len(seg.Data) > hi {
				t.Fatalf("seg %d q%d: %d bytes, want within [%d,%d]", id, q, len(seg.Data), lo, hi)
			}
			if len(seg.Data) != nominal {
				varied = true
			}
			again := c.EncodeAt(f, id, q)
			if !bytes.Equal(seg.Data, again.Data) {
				t.Fatalf("seg %d q%d: two encodes differ", id, q)
			}
		}
	}
	if !varied {
		t.Fatal("statistical codec never deviated from the nominal size")
	}
	// Different seeds are different media.
	other := StatisticalCodec{Seed: 12}
	if bytes.Equal(c.EncodeAt(f, 0, 0).Data, other.EncodeAt(f, 0, 0).Data) {
		t.Fatal("two seeds produced identical content")
	}
}

func TestVerifyAt(t *testing.T) {
	f := codecFile()
	for _, c := range []Codec{PerfectCodec{}, StatisticalCodec{Seed: 3}} {
		seg := c.EncodeAt(f, 4, 1)
		if err := VerifyAt(c, f, seg); err != nil {
			t.Fatalf("%s: genuine segment rejected: %v", c.Name(), err)
		}
		seg.Data = append([]byte(nil), seg.Data...)
		seg.Data[0] ^= 0xff
		if err := VerifyAt(c, f, seg); err == nil {
			t.Fatalf("%s: corrupted segment accepted", c.Name())
		}
		short := c.EncodeAt(f, 4, 1)
		short.Data = short.Data[:len(short.Data)-1]
		if err := VerifyAt(c, f, short); err == nil {
			t.Fatalf("%s: truncated segment accepted", c.Name())
		}
	}
}

func TestStoreQualityTracking(t *testing.T) {
	f := codecFile()
	s, err := NewStore(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(SegmentContentAt(f, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(SegmentContentAt(f, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if q := s.QualityOf(0); q != 0 {
		t.Fatalf("QualityOf(0) = %d, want 0", q)
	}
	if q := s.QualityOf(1); q != 2 {
		t.Fatalf("QualityOf(1) = %d, want 2", q)
	}
	if q := s.QualityOf(2); q != -1 {
		t.Fatalf("QualityOf(missing) = %d, want -1", q)
	}
	if got := s.Downgraded(); got != 1 {
		t.Fatalf("Downgraded = %d, want 1", got)
	}
	if seg, ok := s.Get(1); !ok || seg.Quality != 2 {
		t.Fatalf("Get(1) = %+v, %v; want quality 2", seg, ok)
	}

	// Full quality still demands the exact segment size.
	if err := s.Put(Segment{ID: 3, Data: make([]byte, 10)}); err == nil {
		t.Fatal("undersized q0 segment accepted")
	}
	// Downgraded renditions have codec-dependent sizes, but never zero and
	// never beyond the full segment.
	if err := s.Put(Segment{ID: 3, Quality: 1, Data: make([]byte, 100)}); err != nil {
		t.Fatalf("valid q1 segment rejected: %v", err)
	}
	if err := s.Put(Segment{ID: 4, Quality: 1, Data: nil}); err == nil {
		t.Fatal("empty q1 segment accepted")
	}
	if err := s.Put(Segment{ID: 4, Quality: 1, Data: make([]byte, f.SegmentBytes+1)}); err == nil {
		t.Fatal("oversized q1 segment accepted")
	}
	if err := s.Put(Segment{ID: 4, Quality: MaxQuality + 1, Data: make([]byte, 8)}); err == nil {
		t.Fatal("off-ladder quality accepted")
	}
}
