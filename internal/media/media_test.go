package media

import (
	"bytes"
	"testing"
	"time"
)

func testFile() *File {
	return &File{Name: "t", Segments: 8, SegmentBytes: 16, SegmentTime: time.Second}
}

func TestFileValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*File)
		wantErr bool
	}{
		{"valid", func(f *File) {}, false},
		{"no name", func(f *File) { f.Name = "" }, true},
		{"zero segments", func(f *File) { f.Segments = 0 }, true},
		{"negative segments", func(f *File) { f.Segments = -1 }, true},
		{"zero bytes", func(f *File) { f.SegmentBytes = 0 }, true},
		{"zero time", func(f *File) { f.SegmentTime = 0 }, true},
		{"negative time", func(f *File) { f.SegmentTime = -time.Second }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := testFile()
			tt.mutate(f)
			if err := f.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestFileDerivedQuantities(t *testing.T) {
	f := testFile()
	if got := f.Duration(); got != 8*time.Second {
		t.Errorf("Duration = %v, want 8s", got)
	}
	if got := f.TotalBytes(); got != 128 {
		t.Errorf("TotalBytes = %d, want 128", got)
	}
	if got := f.PlaybackRateBps(); got != 16 {
		t.Errorf("PlaybackRateBps = %g, want 16", got)
	}
}

func TestStandardFile(t *testing.T) {
	f := StandardFile()
	if err := f.Validate(); err != nil {
		t.Fatalf("StandardFile invalid: %v", err)
	}
	if got := f.Duration(); got != time.Hour {
		t.Errorf("StandardFile duration = %v, want 1h (the paper's 60-minute video)", got)
	}
}

func TestStorePutGet(t *testing.T) {
	f := testFile()
	s, err := NewStore(f)
	if err != nil {
		t.Fatal(err)
	}
	if s.Complete() {
		t.Error("empty store reports Complete")
	}
	seg := SegmentContent(f, 3)
	if err := s.Put(seg); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(3)
	if !ok {
		t.Fatal("Get(3) missing after Put")
	}
	if !bytes.Equal(got.Data, seg.Data) {
		t.Error("Get(3) returned different data")
	}
	if !s.Has(3) || s.Has(2) {
		t.Error("Has() wrong")
	}
	if s.Count() != 1 {
		t.Errorf("Count = %d, want 1", s.Count())
	}
}

func TestStorePutErrors(t *testing.T) {
	f := testFile()
	s, _ := NewStore(f)
	if err := s.Put(Segment{ID: -1, Data: make([]byte, 16)}); err == nil {
		t.Error("Put(-1) should fail")
	}
	if err := s.Put(Segment{ID: 8, Data: make([]byte, 16)}); err == nil {
		t.Error("Put(8) out of range should fail")
	}
	if err := s.Put(Segment{ID: 0, Data: make([]byte, 15)}); err == nil {
		t.Error("Put with wrong size should fail")
	}
	if err := s.Put(SegmentContent(f, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(SegmentContent(f, 0)); err == nil {
		t.Error("double Put should fail")
	}
}

func TestStoreGetOutOfRange(t *testing.T) {
	s, _ := NewStore(testFile())
	if _, ok := s.Get(-1); ok {
		t.Error("Get(-1) should be missing")
	}
	if _, ok := s.Get(100); ok {
		t.Error("Get(100) should be missing")
	}
}

func TestNewStoreInvalidFile(t *testing.T) {
	if _, err := NewStore(&File{}); err == nil {
		t.Error("NewStore with invalid file should fail")
	}
	if _, err := NewSeededStore(&File{}); err == nil {
		t.Error("NewSeededStore with invalid file should fail")
	}
}

func TestSeededStoreComplete(t *testing.T) {
	f := testFile()
	s, err := NewSeededStore(f)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Complete() {
		t.Error("seeded store not complete")
	}
	if s.Count() != f.Segments {
		t.Errorf("Count = %d, want %d", s.Count(), f.Segments)
	}
	// Content must be deterministic and distinct between segments.
	a, _ := s.Get(0)
	b, _ := s.Get(1)
	if bytes.Equal(a.Data, b.Data) {
		t.Error("segments 0 and 1 have identical content")
	}
	again := SegmentContent(f, 0)
	if !bytes.Equal(a.Data, again.Data) {
		t.Error("SegmentContent not deterministic")
	}
}

func TestStoreMissingBefore(t *testing.T) {
	f := testFile()
	s, _ := NewStore(f)
	if got := s.MissingBefore(4); got != 0 {
		t.Errorf("MissingBefore(4) = %d, want 0", got)
	}
	for _, id := range []SegmentID{0, 1, 3} {
		if err := s.Put(SegmentContent(f, id)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.MissingBefore(4); got != 2 {
		t.Errorf("MissingBefore(4) = %d, want 2", got)
	}
	if got := s.MissingBefore(2); got != -1 {
		t.Errorf("MissingBefore(2) = %d, want -1", got)
	}
	if got := s.MissingBefore(100); got != 2 {
		t.Errorf("MissingBefore(100) = %d, want 2 (clamped)", got)
	}
}

func TestVerifyPlaybackContinuous(t *testing.T) {
	f := testFile()
	// Segment s arrives at (s+1)·δt: continuous with delay 1·δt.
	arrivals := make([]time.Duration, f.Segments)
	for s := range arrivals {
		arrivals[s] = time.Duration(s+1) * f.SegmentTime
	}
	report, err := VerifyPlayback(f, arrivals, f.SegmentTime)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Continuous() {
		t.Errorf("expected continuous playback, got %d stalls (first %d)", report.Stalls, report.FirstStall)
	}
	// With zero delay, every segment arrives exactly δt late.
	report, err = VerifyPlayback(f, arrivals, 0)
	if err != nil {
		t.Fatal(err)
	}
	if report.Stalls != f.Segments {
		t.Errorf("Stalls = %d, want %d", report.Stalls, f.Segments)
	}
	if report.FirstStall != 0 {
		t.Errorf("FirstStall = %d, want 0", report.FirstStall)
	}
}

func TestVerifyPlaybackErrors(t *testing.T) {
	f := testFile()
	if _, err := VerifyPlayback(f, make([]time.Duration, 3), 0); err == nil {
		t.Error("wrong arrival count should fail")
	}
	if _, err := VerifyPlayback(&File{}, nil, 0); err == nil {
		t.Error("invalid file should fail")
	}
}

func TestMinimalDelay(t *testing.T) {
	f := testFile()
	arrivals := make([]time.Duration, f.Segments)
	for s := range arrivals {
		arrivals[s] = time.Duration(s+1) * f.SegmentTime
	}
	// Worst slack is exactly 1·δt for every segment.
	got, err := MinimalDelay(f, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if got != f.SegmentTime {
		t.Errorf("MinimalDelay = %v, want %v", got, f.SegmentTime)
	}
	// The minimal delay must verify as continuous, and one nanosecond less
	// must stall.
	report, _ := VerifyPlayback(f, arrivals, got)
	if !report.Continuous() {
		t.Error("minimal delay is not continuous")
	}
	report, _ = VerifyPlayback(f, arrivals, got-time.Nanosecond)
	if report.Continuous() {
		t.Error("delay below minimal should stall")
	}
}

func TestMinimalDelayAllEarly(t *testing.T) {
	f := testFile()
	arrivals := make([]time.Duration, f.Segments)
	got, err := MinimalDelay(f, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("MinimalDelay with instant arrivals = %v, want 0", got)
	}
	if _, err := MinimalDelay(f, nil); err == nil {
		t.Error("nil arrivals should fail")
	}
	if _, err := MinimalDelay(&File{}, nil); err == nil {
		t.Error("invalid file should fail")
	}
}
