package media

import (
	"fmt"
	"time"
)

// PlaybackBuffer is the receiver-side playback engine: segments are pushed
// as they arrive (in any order, from multiple suppliers), and Consume pulls
// them in playback order against their deadlines. It implements the
// 'play-while-downloading' behavior the paper contrasts with file sharing,
// and reports stalls the moment they happen instead of post-hoc.
//
// The buffer works on a virtual clock (durations since transmission start),
// so it is equally usable by the deterministic simulator and by live nodes
// feeding it wall-clock offsets. It is not safe for concurrent use; the
// live node serializes pushes with its receive loop.
type PlaybackBuffer struct {
	file    *File
	delay   time.Duration
	arrived []bool
	next    SegmentID
	stalls  int
	// stallUntil tracks cumulative re-buffering: if a segment misses its
	// deadline, playback resumes only once it arrives, shifting every later
	// deadline (the standard stall model).
	shift time.Duration
}

// NewPlaybackBuffer returns a buffer that starts playback after the given
// buffering delay (Theorem 1: n·δt for an n-supplier OTS session).
func NewPlaybackBuffer(f *File, delay time.Duration) (*PlaybackBuffer, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if delay < 0 {
		return nil, fmt.Errorf("media: negative buffering delay %v", delay)
	}
	return &PlaybackBuffer{
		file:    f,
		delay:   delay,
		arrived: make([]bool, f.Segments),
	}, nil
}

// Push records that a segment has fully arrived at the given time (measured
// from transmission start). Duplicate or out-of-range pushes are errors.
func (b *PlaybackBuffer) Push(id SegmentID, at time.Duration) error {
	if id < 0 || int(id) >= b.file.Segments {
		return fmt.Errorf("media: segment %d out of range [0,%d)", id, b.file.Segments)
	}
	if b.arrived[id] {
		return fmt.Errorf("media: segment %d pushed twice", id)
	}
	if at < 0 {
		return fmt.Errorf("media: segment %d arrival %v before transmission start", id, at)
	}
	b.arrived[id] = true
	// A push can only clear a stall for the segment playback is waiting on;
	// Consume accounts for the induced shift.
	return nil
}

// Deadline returns the time at which segment id must be present for
// uninterrupted playback, including any shift accumulated from earlier
// stalls.
func (b *PlaybackBuffer) Deadline(id SegmentID) time.Duration {
	return b.delay + b.shift + time.Duration(id)*b.file.SegmentTime
}

// Consume advances playback to the given segment: it reports whether the
// segment was ready by its deadline, charging a stall (and shifting later
// deadlines by the wait) when it was not. arrivedAt is the push time of the
// segment; callers consume segments strictly in order.
func (b *PlaybackBuffer) Consume(id SegmentID, arrivedAt time.Duration) (onTime bool, err error) {
	if id != b.next {
		return false, fmt.Errorf("media: consuming segment %d, want %d (in-order playback)", id, b.next)
	}
	if !b.arrived[id] {
		return false, fmt.Errorf("media: consuming segment %d before it was pushed", id)
	}
	b.next++
	deadline := b.Deadline(id)
	if arrivedAt <= deadline {
		return true, nil
	}
	// Stall: playback waits for the segment; all later deadlines shift.
	b.stalls++
	b.shift += arrivedAt - deadline
	return false, nil
}

// Stalls returns the number of stalls charged so far.
func (b *PlaybackBuffer) Stalls() int { return b.stalls }

// Rebuffered returns the total extra waiting time accumulated by stalls.
func (b *PlaybackBuffer) Rebuffered() time.Duration { return b.shift }

// Finished reports whether every segment has been consumed.
func (b *PlaybackBuffer) Finished() bool { return int(b.next) == b.file.Segments }

// PlayAll pushes all arrivals and consumes the whole file, returning the
// final report. It is the streaming-order equivalent of VerifyPlayback and
// agrees with it whenever playback never stalls.
func PlayAll(f *File, arrivals []time.Duration, delay time.Duration) (PlaybackReport, error) {
	b, err := NewPlaybackBuffer(f, delay)
	if err != nil {
		return PlaybackReport{}, err
	}
	if len(arrivals) != f.Segments {
		return PlaybackReport{}, fmt.Errorf("media: %d arrival times for %d segments", len(arrivals), f.Segments)
	}
	report := PlaybackReport{Delay: delay, FirstStall: -1}
	for id := 0; id < f.Segments; id++ {
		if err := b.Push(SegmentID(id), arrivals[id]); err != nil {
			return PlaybackReport{}, err
		}
	}
	for id := 0; id < f.Segments; id++ {
		onTime, err := b.Consume(SegmentID(id), arrivals[id])
		if err != nil {
			return PlaybackReport{}, err
		}
		if !onTime {
			report.Stalls++
			if report.FirstStall < 0 {
				report.FirstStall = SegmentID(id)
			}
		}
	}
	return report, nil
}
