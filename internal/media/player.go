package media

import (
	"fmt"
	"time"
)

// PlaybackReport summarizes a playback verification run.
type PlaybackReport struct {
	// Delay is the buffering delay: the interval between the start of
	// segment transmission and the start of playback.
	Delay time.Duration
	// Stalls counts segments that were not present at their playback
	// deadline. Zero stalls means continuous playback.
	Stalls int
	// FirstStall is the segment where the first stall occurred (-1 if none).
	FirstStall SegmentID
}

// Continuous reports whether playback never stalled.
func (r PlaybackReport) Continuous() bool { return r.Stalls == 0 }

// VerifyPlayback checks that a set of segment arrival times supports
// continuous playback starting after the given buffering delay. arrivals[s]
// is the time (measured from transmission start) at which segment s is fully
// received. Playback of segment s begins at delay + s·δt; the segment must
// have arrived by then.
//
// This is the executable form of the paper's continuity requirement and is
// used to validate assignment schedules (Theorem 1) end to end.
func VerifyPlayback(f *File, arrivals []time.Duration, delay time.Duration) (PlaybackReport, error) {
	if err := f.Validate(); err != nil {
		return PlaybackReport{}, err
	}
	if len(arrivals) != f.Segments {
		return PlaybackReport{}, fmt.Errorf("media: %d arrival times for %d segments", len(arrivals), f.Segments)
	}
	report := PlaybackReport{Delay: delay, FirstStall: -1}
	for s := 0; s < f.Segments; s++ {
		deadline := delay + time.Duration(s)*f.SegmentTime
		if arrivals[s] > deadline {
			report.Stalls++
			if report.FirstStall < 0 {
				report.FirstStall = SegmentID(s)
			}
		}
	}
	return report, nil
}

// MinimalDelay returns the smallest buffering delay that yields continuous
// playback for the given arrival times: max over s of arrival(s) - s·δt
// (clamped at zero).
func MinimalDelay(f *File, arrivals []time.Duration) (time.Duration, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if len(arrivals) != f.Segments {
		return 0, fmt.Errorf("media: %d arrival times for %d segments", len(arrivals), f.Segments)
	}
	var delay time.Duration
	for s, arr := range arrivals {
		if d := arr - time.Duration(s)*f.SegmentTime; d > delay {
			delay = d
		}
	}
	return delay, nil
}
