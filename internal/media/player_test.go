package media

import (
	"strings"
	"testing"
	"time"
)

func playerFile() *File {
	return &File{Name: "v", Segments: 4, SegmentBytes: 8, SegmentTime: 10 * time.Millisecond}
}

func TestVerifyPlaybackContinuousSchedule(t *testing.T) {
	f := playerFile()
	// Segment s fully received at (s+1)·δt: continuous from delay δt on.
	arrivals := []time.Duration{10, 20, 30, 40}
	for i := range arrivals {
		arrivals[i] *= time.Millisecond
	}
	report, err := VerifyPlayback(f, arrivals, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Continuous() {
		t.Errorf("stalled %d times, first at %d", report.Stalls, report.FirstStall)
	}
	if report.Delay != 10*time.Millisecond {
		t.Errorf("Delay = %v", report.Delay)
	}
	if report.FirstStall != -1 {
		t.Errorf("FirstStall = %d, want -1", report.FirstStall)
	}
}

func TestVerifyPlaybackCountsStalls(t *testing.T) {
	f := playerFile()
	// With zero buffering delay, segment 0 (arriving at 10ms, deadline 0)
	// and segment 2 (arriving late) stall; segment 1 and 3 make it.
	arrivals := []time.Duration{
		10 * time.Millisecond, // deadline 0ms: stall
		9 * time.Millisecond,  // deadline 10ms: ok
		21 * time.Millisecond, // deadline 20ms: stall
		30 * time.Millisecond, // deadline 30ms: ok
	}
	report, err := VerifyPlayback(f, arrivals, 0)
	if err != nil {
		t.Fatal(err)
	}
	if report.Stalls != 2 {
		t.Errorf("Stalls = %d, want 2", report.Stalls)
	}
	if report.FirstStall != 0 {
		t.Errorf("FirstStall = %d, want 0", report.FirstStall)
	}
	if report.Continuous() {
		t.Error("Continuous with stalls")
	}
}

func TestVerifyPlaybackValidation(t *testing.T) {
	f := playerFile()
	if _, err := VerifyPlayback(f, make([]time.Duration, 3), 0); err == nil {
		t.Error("wrong arrival count accepted")
	}
	if _, err := VerifyPlayback(&File{}, nil, 0); err == nil {
		t.Error("invalid file accepted")
	}
}

func TestMinimalDelayMatchesVerify(t *testing.T) {
	f := playerFile()
	arrivals := []time.Duration{
		25 * time.Millisecond,
		12 * time.Millisecond,
		45 * time.Millisecond, // worst: 45 - 2·10 = 25ms
		41 * time.Millisecond,
	}
	delay, err := MinimalDelay(f, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if want := 25 * time.Millisecond; delay != want {
		t.Errorf("MinimalDelay = %v, want %v", delay, want)
	}
	// The minimal delay is exactly sufficient…
	report, err := VerifyPlayback(f, arrivals, delay)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Continuous() {
		t.Error("playback stalls at the minimal delay")
	}
	// …and one nanosecond less is not.
	report, err = VerifyPlayback(f, arrivals, delay-time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if report.Continuous() {
		t.Error("delay below minimal still continuous")
	}
}

func TestMinimalDelayClampsAtZero(t *testing.T) {
	f := playerFile()
	// Everything arrives instantly: no buffering needed.
	delay, err := MinimalDelay(f, make([]time.Duration, f.Segments))
	if err != nil {
		t.Fatal(err)
	}
	if delay != 0 {
		t.Errorf("MinimalDelay = %v, want 0", delay)
	}
	if _, err := MinimalDelay(f, nil); err == nil || !strings.Contains(err.Error(), "arrival") {
		t.Errorf("nil arrivals: err = %v", err)
	}
}
