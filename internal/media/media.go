// Package media models the constant-bit-rate (CBR) media file shared by the
// peer-to-peer streaming system.
//
// Following Section 2 of the paper, the media file is partitioned into small
// sequential segments of equal size; the stream is CBR, so every segment has
// the same playback time δt (typically on the order of seconds). A peer that
// plays the file consumes segment s during the interval
// [start + s·δt, start + (s+1)·δt), where start is the playback start time.
package media

import (
	"errors"
	"fmt"
	"time"
)

// SegmentID identifies a segment by its position in the file (0-based).
type SegmentID int

// File describes a CBR media file.
type File struct {
	// Name identifies the media item (e.g. "popular-video").
	Name string
	// Segments is the total number of equal-size segments.
	Segments int
	// SegmentBytes is the size of each segment in bytes.
	SegmentBytes int
	// SegmentTime is δt: the playback duration of one segment.
	SegmentTime time.Duration
}

// Validate returns an error if the file description is unusable.
func (f *File) Validate() error {
	switch {
	case f.Name == "":
		return errors.New("media: file needs a name")
	case f.Segments <= 0:
		return fmt.Errorf("media: %q has %d segments, want > 0", f.Name, f.Segments)
	case f.SegmentBytes <= 0:
		return fmt.Errorf("media: %q segment size %d, want > 0", f.Name, f.SegmentBytes)
	case f.SegmentTime <= 0:
		return fmt.Errorf("media: %q segment time %v, want > 0", f.Name, f.SegmentTime)
	}
	return nil
}

// Duration is the total playback time of the file ("show time").
func (f *File) Duration() time.Duration {
	return time.Duration(f.Segments) * f.SegmentTime
}

// TotalBytes is the size of the whole file.
func (f *File) TotalBytes() int64 {
	return int64(f.Segments) * int64(f.SegmentBytes)
}

// PlaybackRateBps is R0 expressed in bytes per second.
func (f *File) PlaybackRateBps() float64 {
	return float64(f.SegmentBytes) / f.SegmentTime.Seconds()
}

// StandardFile builds the paper's simulation media item: a 60-minute video
// with 1-second segments. The byte size is arbitrary in the simulator (only
// timing matters) but is set so the live stack can stream real data.
func StandardFile() *File {
	return &File{
		Name:         "popular-video",
		Segments:     3600,
		SegmentBytes: 4096,
		SegmentTime:  time.Second,
	}
}

// Segment is one unit of media data, carrying the quality class it was
// encoded at (0 = full quality; see Quality).
type Segment struct {
	ID      SegmentID
	Quality Quality
	Data    []byte
}

// Store holds the segments of one file that a peer possesses. A requesting
// peer fills its store during a session; a supplying peer serves from a
// complete store. The zero value is an empty store for a nil file; use
// NewStore.
type Store struct {
	file *File
	data [][]byte  // indexed by SegmentID; nil means missing
	qual []Quality // quality class each stored segment arrived at
	have int
	// downgraded counts stored segments whose quality is below full.
	downgraded int
}

// NewStore returns an empty store for the given file.
func NewStore(f *File) (*Store, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &Store{file: f, data: make([][]byte, f.Segments), qual: make([]Quality, f.Segments)}, nil
}

// NewSeededStore returns a store pre-filled with deterministic synthetic
// content for every segment, as held by a "seed" supplying peer. Segment s
// is filled with the repeated byte pattern derived from s so that transfers
// can be verified end to end.
func NewSeededStore(f *File) (*Store, error) {
	s, err := NewStore(f)
	if err != nil {
		return nil, err
	}
	for id := 0; id < f.Segments; id++ {
		if err := s.Put(SegmentContent(f, SegmentID(id))); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// SegmentContent generates the canonical synthetic content of a segment at
// full quality. Both ends of a transfer can regenerate it, which lets tests
// verify byte-exact delivery without shipping a real media file.
func SegmentContent(f *File, id SegmentID) Segment {
	return Segment{ID: id, Data: canonicalContent(f, id)}
}

// canonicalContent is the full-quality byte pattern codecs derive their
// renditions from.
func canonicalContent(f *File, id SegmentID) []byte {
	data := make([]byte, f.SegmentBytes)
	for i := range data {
		data[i] = byte((int(id)*131 + i*31) % 251)
	}
	return data
}

// File returns the file description the store belongs to.
func (s *Store) File() *File { return s.file }

// Put stores a segment. It rejects out-of-range IDs; re-putting an
// existing segment is an error (it indicates a protocol bug: no supplier
// should send a segment twice). A full-quality segment must match the
// file's segment size exactly; a downgraded rendition (Quality > 0) only
// has to fit under it — variable-bitrate codecs make low-class sizes
// codec-dependent, and per-quality byte verification is VerifyAt's job.
func (s *Store) Put(seg Segment) error {
	if seg.ID < 0 || int(seg.ID) >= s.file.Segments {
		return fmt.Errorf("media: segment %d out of range [0,%d)", seg.ID, s.file.Segments)
	}
	if !seg.Quality.Valid() {
		return fmt.Errorf("media: segment %d quality %d out of range [0,%d]", seg.ID, seg.Quality, MaxQuality)
	}
	if seg.Quality == 0 && len(seg.Data) != s.file.SegmentBytes {
		return fmt.Errorf("media: segment %d has %d bytes, want %d", seg.ID, len(seg.Data), s.file.SegmentBytes)
	}
	if seg.Quality > 0 && (len(seg.Data) == 0 || len(seg.Data) > s.file.SegmentBytes) {
		return fmt.Errorf("media: segment %d q%d has %d bytes, want 1..%d",
			seg.ID, seg.Quality, len(seg.Data), s.file.SegmentBytes)
	}
	if s.data[seg.ID] != nil {
		return fmt.Errorf("media: segment %d already stored", seg.ID)
	}
	s.data[seg.ID] = seg.Data
	s.qual[seg.ID] = seg.Quality
	if seg.Quality > 0 {
		s.downgraded++
	}
	s.have++
	return nil
}

// Get returns the segment with the given ID, or false if it is missing.
func (s *Store) Get(id SegmentID) (Segment, bool) {
	if id < 0 || int(id) >= s.file.Segments || s.data[id] == nil {
		return Segment{}, false
	}
	return Segment{ID: id, Quality: s.qual[id], Data: s.data[id]}, true
}

// QualityOf returns the quality class a stored segment arrived at, or -1 if
// the segment is missing.
func (s *Store) QualityOf(id SegmentID) Quality {
	if id < 0 || int(id) >= s.file.Segments || s.data[id] == nil {
		return -1
	}
	return s.qual[id]
}

// Downgraded returns how many stored segments arrived below full quality —
// the store-level view of a session's ABR activity.
func (s *Store) Downgraded() int { return s.downgraded }

// Has reports whether the segment is present.
func (s *Store) Has(id SegmentID) bool {
	return id >= 0 && int(id) < s.file.Segments && s.data[id] != nil
}

// Count returns how many segments are present.
func (s *Store) Count() int { return s.have }

// Complete reports whether every segment of the file is present.
func (s *Store) Complete() bool { return s.have == s.file.Segments }

// MissingBefore returns the first missing segment ID below limit, or -1 if
// all segments in [0, limit) are present.
func (s *Store) MissingBefore(limit SegmentID) SegmentID {
	if int(limit) > s.file.Segments {
		limit = SegmentID(s.file.Segments)
	}
	for id := SegmentID(0); id < limit; id++ {
		if s.data[id] == nil {
			return id
		}
	}
	return -1
}
