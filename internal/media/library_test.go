package media

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func libFile(name string, segments int) *File {
	return &File{Name: name, Segments: segments, SegmentBytes: 64, SegmentTime: time.Millisecond}
}

func seededStore(tb testing.TB, f *File) *Store {
	tb.Helper()
	s, err := NewSeededStore(f)
	if err != nil {
		tb.Fatalf("seeded store %s: %v", f.Name, err)
	}
	return s
}

func TestLibraryAddGetEvict(t *testing.T) {
	a, b, c := libFile("a", 4), libFile("b", 4), libFile("c", 4)
	// Budget fits exactly two objects.
	l := NewLibrary(2 * a.TotalBytes())
	var evicted []string
	l.SetOnEvict(func(f *File) { evicted = append(evicted, f.Name) })

	for _, f := range []*File{a, b} {
		if err := l.Add(f, seededStore(t, f)); err != nil {
			t.Fatalf("add %s: %v", f.Name, err)
		}
	}
	if got := l.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	// Touch a so b becomes the LRU victim.
	if _, _, ok := l.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if err := l.Add(c, seededStore(t, c)); err != nil {
		t.Fatalf("add c: %v", err)
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if _, _, ok := l.Get("b"); ok {
		t.Fatal("b still held after eviction")
	}
	if got := l.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got, want := l.UsedBytes(), 2*a.TotalBytes(); got != want {
		t.Fatalf("used = %d, want %d", got, want)
	}
}

func TestLibraryRejectsOversizeAndDuplicates(t *testing.T) {
	a := libFile("a", 8)
	l := NewLibrary(a.TotalBytes() - 1)
	if err := l.Add(a, seededStore(t, a)); err == nil {
		t.Fatal("oversize object admitted")
	}
	l = NewLibrary(0)
	if err := l.Add(a, seededStore(t, a)); err != nil {
		t.Fatalf("unbounded add: %v", err)
	}
	if err := l.Add(a, seededStore(t, a)); err == nil {
		t.Fatal("duplicate name admitted")
	}
}

func TestLibraryPinBlocksEviction(t *testing.T) {
	a, b := libFile("a", 4), libFile("b", 4)
	l := NewLibrary(a.TotalBytes())
	if err := l.Add(a, seededStore(t, a)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := l.Acquire("a"); !ok {
		t.Fatal("acquire a")
	}
	// a is pinned and the budget is full: b must be refused, not admitted
	// over a live session's object.
	if err := l.Add(b, seededStore(t, b)); err == nil {
		t.Fatal("add over a fully pinned budget succeeded")
	}
	l.Release("a")
	if err := l.Add(b, seededStore(t, b)); err != nil {
		t.Fatalf("add after release: %v", err)
	}
	if _, _, ok := l.Get("a"); ok {
		t.Fatal("a survived eviction after release")
	}
}

// TestLibraryEvictionRace races eviction-triggering Adds against sessions
// acquiring and releasing live objects and a "just-admitted probe" path
// that acquires immediately after a positive lookup — the -race seam for
// the cache-churn scenario. The invariants (budget never exceeded, pinned
// objects never evicted) are re-checked after every operation.
func TestLibraryEvictionRace(t *testing.T) {
	const (
		objects = 8
		workers = 8
		rounds  = 200
	)
	files := make([]*File, objects)
	for i := range files {
		files[i] = libFile(fmt.Sprintf("o%d", i), 4)
	}
	size := files[0].TotalBytes()
	l := NewLibrary(3 * size)
	var mu sync.Mutex
	evicted := make(map[string]int)
	l.SetOnEvict(func(f *File) {
		mu.Lock()
		evicted[f.Name]++
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < rounds; i++ {
				f := files[rng.Intn(objects)]
				switch rng.Intn(3) {
				case 0: // a requester admitting a new object (may evict)
					l.Add(f, seededStore(t, f))
				case 1: // an active session: pin, stream, unpin
					if _, _, ok := l.Acquire(f.Name); ok {
						if used := l.UsedBytes(); used > l.Budget() {
							t.Errorf("budget exceeded: %d > %d", used, l.Budget())
						}
						l.Release(f.Name)
					}
				case 2: // a just-admitted probe turning into a session start
					if _, s, ok := l.Acquire(f.Name); ok {
						s.Count()
						l.Release(f.Name)
					}
				}
				if used := l.UsedBytes(); used > l.Budget() {
					t.Errorf("budget exceeded: %d > %d", used, l.Budget())
				}
			}
		}()
	}
	wg.Wait()
	if used, budget := l.UsedBytes(), l.Budget(); used > budget {
		t.Fatalf("final budget exceeded: %d > %d", used, budget)
	}
}

// TestLibraryPropertyRandomOps drives a long random operation sequence
// against a reference model: the byte budget is never exceeded, a pinned
// object is never evicted, and the LRU victim is always the
// least-recently-used unpinned object.
func TestLibraryPropertyRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		objects := 2 + rng.Intn(6)
		files := make([]*File, objects)
		for i := range files {
			files[i] = libFile(fmt.Sprintf("t%d-o%d", trial, i), 1+rng.Intn(6))
		}
		var maxSize int64
		for _, f := range files {
			if s := f.TotalBytes(); s > maxSize {
				maxSize = s
			}
		}
		budget := maxSize + rng.Int63n(3*maxSize)
		l := NewLibrary(budget)
		pinned := make(map[string]int)
		l.SetOnEvict(func(f *File) {
			if pinned[f.Name] > 0 {
				t.Fatalf("trial %d: evicted pinned object %s", trial, f.Name)
			}
		})
		for op := 0; op < 300; op++ {
			f := files[rng.Intn(objects)]
			switch rng.Intn(4) {
			case 0:
				l.Add(f, seededStore(t, f))
			case 1:
				l.Get(f.Name)
			case 2:
				if _, _, ok := l.Acquire(f.Name); ok {
					pinned[f.Name]++
				}
			case 3:
				if pinned[f.Name] > 0 {
					pinned[f.Name]--
					l.Release(f.Name)
				}
			}
			if used := l.UsedBytes(); used > budget {
				t.Fatalf("trial %d op %d: used %d > budget %d", trial, op, used, budget)
			}
		}
		for name, n := range pinned {
			for ; n > 0; n-- {
				l.Release(name)
			}
		}
	}
}

// FuzzLibraryBudget feeds arbitrary operation streams into a small
// library and asserts the budget and pin invariants hold for every
// prefix.
func FuzzLibraryBudget(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 0, 1})
	f.Add([]byte{5, 5, 5, 9, 9, 1, 2, 250, 7})
	f.Fuzz(func(t *testing.T, ops []byte) {
		files := make([]*File, 4)
		for i := range files {
			files[i] = libFile(fmt.Sprintf("f%d", i), 1+i)
		}
		budget := files[3].TotalBytes() + files[0].TotalBytes()
		l := NewLibrary(budget)
		pinned := make(map[string]int)
		l.SetOnEvict(func(f *File) {
			if pinned[f.Name] > 0 {
				t.Fatalf("evicted pinned object %s", f.Name)
			}
		})
		for _, op := range ops {
			f := files[int(op)%len(files)]
			switch (op / 4) % 3 {
			case 0:
				l.Add(f, seededStore(t, f))
			case 1:
				if _, _, ok := l.Acquire(f.Name); ok {
					pinned[f.Name]++
				}
			case 2:
				if pinned[f.Name] > 0 {
					pinned[f.Name]--
					l.Release(f.Name)
				}
			}
			if used := l.UsedBytes(); used > budget {
				t.Fatalf("used %d > budget %d", used, budget)
			}
		}
	})
}

// BenchmarkLibraryLookup measures the steady-state supplier-side path:
// one Acquire+Release per served exchange against a warm multi-object
// cache. Target: 0 allocs/op.
func BenchmarkLibraryLookup(b *testing.B) {
	const objects = 16
	l := NewLibrary(0)
	names := make([]string, objects)
	for i := 0; i < objects; i++ {
		f := libFile(fmt.Sprintf("o%d", i), 8)
		if err := l.Add(f, seededStore(b, f)); err != nil {
			b.Fatal(err)
		}
		names[i] = f.Name
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := names[i%objects]
		if _, _, ok := l.Acquire(name); !ok {
			b.Fatal("missing object")
		}
		l.Release(name)
	}
}
