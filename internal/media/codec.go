package media

import "fmt"

// Quality is a bitrate-class index for one segment's encoding: 0 is full
// quality, and each step halves the nominal byte size — the paper's dyadic
// R0/2^c offer ladder applied to the media itself, so a congested session
// can downgrade one class and keep playing instead of stalling.
type Quality int

// MaxQuality bounds the downgrade ladder. Below R0/2^4 the rendition is no
// longer watchable; sessions stall rather than degrade further.
const MaxQuality Quality = 4

// Valid reports whether q is on the ladder.
func (q Quality) Valid() bool { return q >= 0 && q <= MaxQuality }

// SizeAt returns the nominal byte size of one segment encoded at quality q:
// the full segment size halved once per class.
func (f *File) SizeAt(q Quality) int {
	n := f.SegmentBytes >> uint(q)
	if n < 1 {
		n = 1
	}
	return n
}

// Codec produces the rendition of a segment at a given quality class. Both
// ends of a transfer regenerate content deterministically (nothing ships a
// real media file), so a codec is a pure function of (file, id, quality)
// and the receiver can verify delivery byte-exactly at any class.
type Codec interface {
	// Name identifies the codec in reports.
	Name() string
	// EncodeAt returns segment id encoded at quality q.
	EncodeAt(f *File, id SegmentID, q Quality) Segment
}

// PerfectCodec is an idealized scalable codec: the rendition at quality q
// is exactly the nominal dyadic size, produced by striding the canonical
// full-quality content. Every class of every segment is reproducible from
// (file, id, q) alone.
type PerfectCodec struct{}

// Name implements Codec.
func (PerfectCodec) Name() string { return "perfect" }

// EncodeAt implements Codec: it keeps every 2^q-th byte of the canonical
// content, so a downgraded rendition is a strict subsample of the full one.
func (PerfectCodec) EncodeAt(f *File, id SegmentID, q Quality) Segment {
	full := canonicalContent(f, id)
	if q <= 0 {
		return Segment{ID: id, Data: full}
	}
	stride := 1 << uint(q)
	out := make([]byte, 0, f.SizeAt(q))
	for i := 0; i < len(full) && len(out) < cap(out); i += stride {
		out = append(out, full[i])
	}
	return Segment{ID: id, Quality: q, Data: out}
}

// StatisticalCodec models a variable-bitrate encoder: segment sizes jitter
// deterministically around the nominal dyadic size (up to ±25%), the way a
// real encoder spends bits unevenly across a scene. Content remains a pure
// function of (seed, id, q), so transfers still verify byte-exactly.
type StatisticalCodec struct {
	// Seed fixes the size jitter and content stream; two suppliers with
	// the same seed hold identical renditions.
	Seed int64
}

// Name implements Codec.
func (c StatisticalCodec) Name() string { return "statistical" }

// EncodeAt implements Codec.
func (c StatisticalCodec) EncodeAt(f *File, id SegmentID, q Quality) Segment {
	nominal := f.SizeAt(q)
	h := splitmix(uint64(c.Seed) ^ uint64(id)*0x9e3779b97f4a7c15 ^ uint64(q)<<56)
	// Jitter in [-25%, +25%] of nominal, but never past the full segment
	// size and never empty.
	jitter := int(h%uint64(nominal/2+1)) - nominal/4
	n := nominal + jitter
	if n > f.SegmentBytes {
		n = f.SegmentBytes
	}
	if n < 1 {
		n = 1
	}
	data := make([]byte, n)
	x := h
	for i := range data {
		x = splitmix(x)
		data[i] = byte(x)
	}
	return Segment{ID: id, Quality: q, Data: data}
}

// splitmix is the SplitMix64 mixing step — a tiny, allocation-free PRNG
// good enough for synthetic media bytes.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SegmentContentAt generates the canonical rendition of a segment at
// quality q using the default (perfect) codec. SegmentContent is the
// full-quality special case.
func SegmentContentAt(f *File, id SegmentID, q Quality) Segment {
	return PerfectCodec{}.EncodeAt(f, id, q)
}

// VerifyAt checks that a received segment matches the codec's rendition at
// the segment's declared quality.
func VerifyAt(c Codec, f *File, seg Segment) error {
	want := c.EncodeAt(f, seg.ID, seg.Quality)
	if len(want.Data) != len(seg.Data) {
		return fmt.Errorf("media: segment %d q%d has %d bytes, want %d",
			seg.ID, seg.Quality, len(seg.Data), len(want.Data))
	}
	for i := range want.Data {
		if seg.Data[i] != want.Data[i] {
			return fmt.Errorf("media: segment %d q%d differs at byte %d", seg.ID, seg.Quality, i)
		}
	}
	return nil
}
