package protocol

import (
	"testing"
	"time"

	"p2pstream/internal/bandwidth"
	"p2pstream/internal/clock"
	"p2pstream/internal/core"
	"p2pstream/internal/dac"
	"p2pstream/internal/sim"
)

// sweep drives an Attempt against in-memory suppliers, granting per the
// given decisions (indexed like classes).
func sweep(t *testing.T, classes []bandwidth.Class, decide func(idx int) (dac.Decision, bool)) *Attempt {
	t.Helper()
	att := NewAttempt(classes)
	for {
		idx, ok := att.Next()
		if !ok {
			return att
		}
		dec, favors := decide(idx)
		att.Record(idx, dec, favors)
	}
}

func TestAttemptAdmitsAtExactlyR0(t *testing.T) {
	// Classes 3, 1, 2: probed high class first (1, 2, 3); 1/2 + 1/4 + 1/8
	// overshoots after 3 candidates? No: 1/2+1/4 = 3/4, +1/8 = 7/8 < R0 —
	// use the Figure 1 mix instead: 1, 2, 3, 3 sums to exactly R0.
	classes := []bandwidth.Class{3, 1, 2, 3}
	att := sweep(t, classes, func(int) (dac.Decision, bool) { return dac.Granted, true })
	if !att.Admitted() {
		t.Fatal("not admitted with offers summing to R0")
	}
	// Probe order is high class first: indices 1 (class 1), 2 (class 2),
	// then the class-3 candidates in positional order.
	want := []int{1, 2, 0, 3}
	got := att.Chosen()
	if len(got) != len(want) {
		t.Fatalf("chosen %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chosen %v, want %v", got, want)
		}
	}
}

func TestAttemptStopsProbingAtR0(t *testing.T) {
	classes := []bandwidth.Class{1, 1, 1, 1}
	probed := 0
	att := sweep(t, classes, func(int) (dac.Decision, bool) { probed++; return dac.Granted, true })
	if !att.Admitted() {
		t.Fatal("not admitted")
	}
	if probed != 2 {
		t.Errorf("probed %d candidates, want 2 (sweep must stop at R0)", probed)
	}
}

func TestAttemptSkipsOvershootingGrant(t *testing.T) {
	// Class 1 (1/2) granted, class 1 granted, class 1 granted: the third
	// grant would overshoot; with only two needed the attempt stops. Now
	// force overshoot-skipping: 1/2 granted, then 1/2 denied, then 1/4+1/4.
	classes := []bandwidth.Class{1, 1, 2, 2}
	att := sweep(t, classes, func(idx int) (dac.Decision, bool) {
		if idx == 1 {
			return dac.DeniedProbability, false
		}
		return dac.Granted, true
	})
	if !att.Admitted() {
		t.Fatal("not admitted: 1/2 + 1/4 + 1/4 = R0")
	}
	if n := len(att.Chosen()); n != 3 {
		t.Errorf("chosen %d suppliers, want 3", n)
	}
}

func TestAttemptRejectionAndReminderTargets(t *testing.T) {
	// All busy; only some favor the requester. Reminder targets are the
	// busy favoring candidates, high class first, accumulated to R0.
	classes := []bandwidth.Class{1, 1, 2, 4}
	att := sweep(t, classes, func(idx int) (dac.Decision, bool) {
		return dac.DeniedBusy, idx != 2 // the class-2 candidate does not favor us
	})
	if att.Admitted() {
		t.Fatal("admitted with zero grants")
	}
	targets := att.ReminderTargets()
	// 1/2 (idx 0) + 1/2 (idx 1) = R0; idx 3 would overshoot, idx 2 is not
	// favoring.
	if len(targets) != 2 || targets[0] != 0 || targets[1] != 1 {
		t.Errorf("targets = %v, want [0 1]", targets)
	}
}

func TestAttemptDownYieldsNothing(t *testing.T) {
	classes := []bandwidth.Class{1, 1}
	att := NewAttempt(classes)
	for {
		idx, ok := att.Next()
		if !ok {
			break
		}
		att.Down(idx)
	}
	if att.Admitted() {
		t.Error("admitted with every candidate down")
	}
	if len(att.ReminderTargets()) != 0 {
		t.Error("down candidates produced reminder targets")
	}
}

func TestAssignSessionChecksTheorem1(t *testing.T) {
	a, err := AssignSession([]core.Supplier{{ID: "a", Class: 1}, {ID: "b", Class: 2}, {ID: "c", Class: 3}, {ID: "d", Class: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.DelaySlots(); got != 4 {
		t.Errorf("delay = %d slots, want 4", got)
	}
	if _, err := AssignSession([]core.Supplier{{ID: "a", Class: 2}}); err == nil {
		t.Error("offers below R0 accepted")
	}
}

func TestSessionTiming(t *testing.T) {
	dt := 4 * time.Millisecond
	if got := TheoreticalDelay(3, dt); got != 12*time.Millisecond {
		t.Errorf("TheoreticalDelay = %v", got)
	}
	// A class-2 supplier sends one segment every 4·δt.
	if got := TransmissionDeadline(0, 2, dt); got != 16*time.Millisecond {
		t.Errorf("first deadline = %v, want 16ms", got)
	}
	if got := TransmissionDeadline(2, 1, dt); got != 24*time.Millisecond {
		t.Errorf("third class-1 deadline = %v, want 24ms", got)
	}
}

// TestSupplierIdleElevation: under an engine clock, idle timeouts elevate
// the vector step by step until all classes are favored, then stop.
func TestSupplierIdleElevation(t *testing.T) {
	var eng sim.Engine
	clk := clock.ForEngine(&eng)
	sup, err := NewSupplier(1, 4, dac.DAC, clk, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A class-1 supplier in K=4 favors classes down to its own and must
	// elevate (4-1) = 3 times to favor everyone.
	eng.Run()
	if got := sup.LowestFavored(); got != 4 {
		t.Errorf("LowestFavored = %d after all elevations, want 4", got)
	}
	if eng.Processed() != 3 {
		t.Errorf("processed %d idle timeouts, want 3 (timer must stop when all-open)", eng.Processed())
	}
}

// TestSupplierSessionSuspendsTimer: a session stops the pending idle
// timeout; EndSession re-arms it.
func TestSupplierSessionSuspendsTimer(t *testing.T) {
	var eng sim.Engine
	clk := clock.ForEngine(&eng)
	sup, err := NewSupplier(1, 4, dac.DAC, clk, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.StartSession(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Minute)
	if got := sup.LowestFavored(); got != 1 {
		t.Errorf("vector elevated during a session: LowestFavored = %d", got)
	}
	if err := sup.EndSession(); err != nil {
		t.Fatal(err)
	}
	// No reminders and no favored request: end-of-session elevates once,
	// then idle timeouts (re-armed) elevate the rest.
	eng.Run()
	if got := sup.LowestFavored(); got != 4 {
		t.Errorf("LowestFavored = %d, want 4", got)
	}
	probes, sessions, reminders := sup.Stats()
	if probes != 0 || sessions != 1 || reminders != 0 {
		t.Errorf("stats = (%d, %d, %d), want (0, 1, 0)", probes, sessions, reminders)
	}
}

// TestSupplierBusyReminderTighten: a favored-class reminder during a
// session tightens the vector at end of session (Section 4.1(c)).
func TestSupplierBusyReminderTighten(t *testing.T) {
	var eng sim.Engine
	clk := clock.ForEngine(&eng)
	sup, err := NewSupplier(1, 4, dac.DAC, clk, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.StartSession(); err != nil {
		t.Fatal(err)
	}
	dec, favors := sup.HandleProbe(1, 0)
	if dec != dac.DeniedBusy || !favors {
		t.Fatalf("busy probe = (%v, %v)", dec, favors)
	}
	if !sup.LeaveReminder(1) {
		t.Fatal("favored reminder not kept")
	}
	if sup.LeaveReminder(4) {
		t.Error("unfavored reminder kept")
	}
	if err := sup.EndSession(); err != nil {
		t.Fatal(err)
	}
	_, _, reminders := sup.Stats()
	if reminders != 1 {
		t.Errorf("reminders = %d, want 1", reminders)
	}
}

// TestSupplierNDACNeverArms: the baseline never schedules idle timeouts
// and ignores reminders.
func TestSupplierNDACNeverArms(t *testing.T) {
	var eng sim.Engine
	clk := clock.ForEngine(&eng)
	sup, err := NewSupplier(2, 4, dac.NDAC, clk, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 0 {
		t.Errorf("NDAC supplier scheduled %d timers", eng.Pending())
	}
	dec, favors := sup.HandleProbe(4, 0)
	if dec != dac.Granted || !favors {
		t.Errorf("NDAC probe = (%v, %v), want granted to everyone", dec, favors)
	}
	sup.Close()
}

// TestSupplierCloseStopsTimer: Close cancels the pending elevation.
func TestSupplierCloseStopsTimer(t *testing.T) {
	var eng sim.Engine
	clk := clock.ForEngine(&eng)
	sup, err := NewSupplier(1, 4, dac.DAC, clk, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sup.Close()
	eng.Run()
	if got := sup.LowestFavored(); got != 1 {
		t.Errorf("closed supplier elevated to %d", got)
	}
}

// TestSlotsBudget: the shared outbound session budget clamps its capacity
// to one, counts acquisitions, and never goes negative.
func TestSlotsBudget(t *testing.T) {
	s := NewSlots(0)
	if s.Cap() != 1 {
		t.Fatalf("Cap() = %d, want clamp to 1", s.Cap())
	}
	s = NewSlots(2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("budget of 2 refused its first two acquisitions")
	}
	if s.Available() || s.TryAcquire() {
		t.Fatal("exhausted budget still granting")
	}
	if got := s.Used(); got != 2 {
		t.Fatalf("Used() = %d, want 2", got)
	}
	s.Release()
	if !s.Available() || s.Used() != 1 {
		t.Fatal("release did not free a slot")
	}
	s.Release()
	s.Release() // extra release must not underflow into phantom capacity
	if s.Used() != 0 {
		t.Fatalf("Used() = %d after draining, want 0", s.Used())
	}
	if !s.TryAcquire() || !s.TryAcquire() || s.TryAcquire() {
		t.Fatal("capacity changed after an over-release")
	}
}

// TestSupplierSharedSlots: two per-object suppliers of one node share one
// slot. While object A's session holds it, object B's idle stream answers
// probes DeniedBusy without touching its own dac state — and B's
// admissions resume the instant A's session ends.
func TestSupplierSharedSlots(t *testing.T) {
	var eng sim.Engine
	clk := clock.ForEngine(&eng)
	slots := NewSlots(1)
	newSup := func() *Supplier {
		sup, err := NewSupplier(1, 4, dac.DAC, clk, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		sup.SetSlots(slots)
		return sup
	}
	supA, supB := newSup(), newSup()
	if err := supA.StartSession(); err != nil {
		t.Fatal(err)
	}
	if err := supB.StartSession(); err == nil {
		t.Fatal("object B claimed a session past the shared budget")
	}
	dec, favors := supB.HandleProbe(1, 0)
	if dec != dac.DeniedBusy || !favors {
		t.Fatalf("idle stream with no free slot probed = (%v, %v), want (DeniedBusy, true)", dec, favors)
	}
	if supB.Busy() {
		t.Fatal("slot-starved probe marked object B's stream busy")
	}
	if err := supA.EndSession(); err != nil {
		t.Fatal(err)
	}
	if dec, _ := supB.HandleProbe(1, 0); dec != dac.Granted {
		t.Fatalf("probe after the slot freed = %v, want Granted", dec)
	}
	if err := supB.StartSession(); err != nil {
		t.Fatalf("object B cannot start after the slot freed: %v", err)
	}
	if err := supB.EndSession(); err != nil {
		t.Fatal(err)
	}
	supA.Close()
	supB.Close()
}
