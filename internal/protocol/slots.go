package protocol

import "sync"

// Slots is a node's shared outbound session budget: every concurrent
// streaming session — regardless of which media object it serves —
// commits one slot of R0/2^c outbound bandwidth, so a class-c node with
// k slots pledges at most k·R0/2^c upstream. One Slots instance is
// shared by every per-object Supplier of a node; a Supplier whose own
// stream is idle but whose node has no slot left answers probes
// DeniedBusy, exactly as the paper's single-stream supplier does while
// serving.
//
// The default capacity of 1 reproduces the single-object model: at most
// one session per supplying peer.
type Slots struct {
	mu   sync.Mutex
	cap  int
	used int
}

// NewSlots returns a budget of the given capacity (minimum 1).
func NewSlots(capacity int) *Slots {
	if capacity < 1 {
		capacity = 1
	}
	return &Slots{cap: capacity}
}

// Cap returns the slot capacity.
func (s *Slots) Cap() int { return s.cap }

// Available reports whether at least one slot is free.
func (s *Slots) Available() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used < s.cap
}

// TryAcquire claims one slot, reporting success.
func (s *Slots) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used >= s.cap {
		return false
	}
	s.used++
	return true
}

// Release returns one slot to the budget.
func (s *Slots) Release() {
	s.mu.Lock()
	if s.used > 0 {
		s.used--
	}
	s.mu.Unlock()
}

// Used returns the number of slots currently held.
func (s *Slots) Used() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}
