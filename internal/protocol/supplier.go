package protocol

import (
	"fmt"
	"sync"
	"time"

	"p2pstream/internal/bandwidth"
	"p2pstream/internal/clock"
	"p2pstream/internal/dac"
)

// Supplier is the supplying-peer side of the session layer: the DAC_p2p
// admission state machine (internal/dac) combined with the clock-driven
// idle elevation timer of Section 4.1(b) and the session lifecycle. The
// simulator runs it on an engine-backed clock, the live node on the wall
// clock or a virtual one; the elevation and post-session vector rules live
// here exactly once.
//
// Supplier is safe for concurrent use (the live node serves probes,
// reminders and sessions from independent connection goroutines; the
// single-threaded simulator pays one uncontended lock).
type Supplier struct {
	clk  clock.Clock
	tout time.Duration
	// slots, when non-nil, is the node's shared outbound session budget:
	// every per-object Supplier of one node consults the same pool, so
	// slot accounting is per node while the admission vector, idle
	// elevation and post-session rules above stay per stream.
	slots *Slots

	mu     sync.Mutex
	adm    *dac.Supplier
	timer  clock.Timer
	closed bool

	probes    int
	sessions  int
	reminders int
}

// NewSupplier returns a supplying peer of the given class in a system with
// numClasses classes, with its idle elevation timer armed on clk.
func NewSupplier(class, numClasses bandwidth.Class, policy dac.Policy, clk clock.Clock, tout time.Duration) (*Supplier, error) {
	adm, err := dac.NewSupplier(class, numClasses, policy)
	if err != nil {
		return nil, err
	}
	s := &Supplier{clk: clk, tout: tout, adm: adm}
	s.mu.Lock()
	s.armLocked()
	s.mu.Unlock()
	return s, nil
}

// SetSlots attaches the node's shared session budget. Call before the
// supplier serves traffic; nil (the default) leaves each stream with the
// paper's implicit one-session budget enforced by the dac machine alone.
func (s *Supplier) SetSlots(slots *Slots) {
	s.mu.Lock()
	s.slots = slots
	s.mu.Unlock()
}

// Class returns the supplier's bandwidth class.
func (s *Supplier) Class() bandwidth.Class {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adm.Class()
}

// Busy reports whether a session is in progress.
func (s *Supplier) Busy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adm.Busy()
}

// LowestFavored returns the lowest class currently favored (Figure 7).
func (s *Supplier) LowestFavored() bandwidth.Class {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adm.LowestFavored()
}

// Stats returns protocol counters: probes served, sessions completed,
// reminders kept.
func (s *Supplier) Stats() (probes, sessions, reminders int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.probes, s.sessions, s.reminders
}

// HandleProbe serves one admission probe: it reports the decision together
// with whether the supplier currently favors the requester's class (busy
// deny replies carry it so the requester can target reminders). u must be
// uniform in [0, 1), drawn by the caller — randomness stays outside the
// state machine.
func (s *Supplier) HandleProbe(reqClass bandwidth.Class, u float64) (dec dac.Decision, favors bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes++
	favors = s.adm.Favors(reqClass)
	if !s.adm.Busy() && s.slots != nil && !s.slots.Available() {
		// Another object's session holds the node's last outbound slot:
		// from this stream's perspective the peer is busy. The stream's
		// own vector state is untouched — no session on this stream will
		// end to apply a post-session update, and idle elevation keeps
		// running per stream.
		return dac.DeniedBusy, favors
	}
	return s.adm.HandleProbe(reqClass, u), favors
}

// LeaveReminder records a rejected requester's reminder; it reports
// whether the reminder was kept.
func (s *Supplier) LeaveReminder(reqClass bandwidth.Class) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.adm.LeaveReminder(reqClass)
	if kept {
		s.reminders++
	}
	return kept
}

// StartSession claims the supplier for one streaming session — one slot
// of the node's shared budget plus this stream's dac state — and
// suspends the idle elevation timer.
func (s *Supplier) StartSession() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slots != nil && !s.slots.TryAcquire() {
		return fmt.Errorf("protocol: node session budget exhausted")
	}
	if err := s.adm.StartSession(); err != nil {
		if s.slots != nil {
			s.slots.Release()
		}
		return err
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	return nil
}

// EndSession releases the supplier: the post-session vector update of
// Section 4.1(c) is applied and the idle elevation timer re-armed.
func (s *Supplier) EndSession() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.adm.EndSession(); err != nil {
		return err
	}
	if s.slots != nil {
		s.slots.Release()
	}
	s.sessions++
	s.armLocked()
	return nil
}

// Close stops the idle timer; further timeouts are ignored.
func (s *Supplier) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

// armLocked schedules the next elevate-after-timeout step (Section 4.1(b)).
// NDAC suppliers never elevate, and an all-open vector cannot change, so
// neither schedules a timer.
func (s *Supplier) armLocked() {
	if s.closed || s.adm.Busy() || s.adm.AllOpen() {
		return
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	s.timer = nil
	if !s.elevates() {
		return
	}
	s.timer = s.clk.AfterFunc(s.tout, s.onIdleTimeout)
}

// elevates reports whether idle timeouts can still change the vector.
func (s *Supplier) elevates() bool {
	// OnIdleTimeout on an NDAC supplier is a no-op; probing that via a
	// dry-run would mutate DAC state, so consult the policy directly.
	return s.adm.Policy() == dac.DAC
}

func (s *Supplier) onIdleTimeout() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.adm.Busy() {
		return
	}
	if s.adm.OnIdleTimeout() {
		s.armLocked()
	}
}
