package protocol

import (
	"time"

	"p2pstream/internal/bandwidth"
)

// TransmissionDeadline returns when a class-c supplier finishes sending
// its i-th assigned segment, measured from the session start: one segment
// every 2^c segment-times, so the i-th completes at (i+1)·2^c·δt. The live
// supplier paces its stream against these absolute deadlines (pacing
// against an absolute schedule avoids drift); the schedule analyzer in
// internal/core uses the same slot arithmetic.
func TransmissionDeadline(i int, class bandwidth.Class, dt time.Duration) time.Duration {
	return time.Duration(i+1) * (dt << uint(class))
}

// TheoreticalDelay returns Theorem 1's buffering delay for a session with
// n suppliers: n·δt.
func TheoreticalDelay(n int, dt time.Duration) time.Duration {
	return time.Duration(n) * dt
}
