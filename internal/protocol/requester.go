// Package protocol is the transport- and clock-agnostic core of the
// paper's two mechanisms: the DAC_p2p admission protocol (Section 4) and
// the OTS_p2p media data assignment (Section 3), expressed as passive
// session state machines. The discrete-event simulator
// (internal/system) and the live overlay node (internal/node) are thin
// drivers over this package: the simulator feeds it in-memory probe
// results under virtual time, the node feeds it wire messages — the
// admission decisions, candidate ordering, reminder targeting, supplier
// lifecycle and assignment checks are implemented exactly once.
package protocol

import (
	"fmt"

	"p2pstream/internal/bandwidth"
	"p2pstream/internal/core"
	"p2pstream/internal/dac"
)

// Attempt is one admission attempt of a requesting peer (Section 4.2): it
// walks the looked-up candidates high class first, accumulates granted
// offers up to exactly R0 — skipping grants that would overshoot — and
// stops as soon as permissions reach R0, or as soon as the candidates not
// yet probed cannot reach it. The driver owns all I/O: it asks
// Next which candidate to contact, performs the probe however it likes
// (wire message, in-memory state machine call), and reports the result
// with Record or Down.
type Attempt struct {
	classes []bandwidth.Class
	order   []int // probe order: high class first, stable
	pos     int

	sum      bandwidth.Fraction
	rest     bandwidth.Fraction // aggregate offer of the not-yet-probed tail
	remSum   bandwidth.Fraction // reminder accumulation: busy favoring offers up to R0
	chosen   []int
	outcomes []dac.ProbeOutcome // every answered probe, for reminder targeting
	admitted bool
}

// NewAttempt starts an admission attempt over candidates with the given
// bandwidth classes (indices into this slice identify candidates in every
// other method).
func NewAttempt(classes []bandwidth.Class) *Attempt {
	a := &Attempt{
		classes: classes,
		order:   dac.ProbeOrder(classes),
	}
	for _, c := range classes {
		a.rest += c.Offer()
	}
	return a
}

// Next returns the index of the next candidate to probe. ok is false when
// the sweep is over: permissions reached exactly R0 (Admitted), every
// candidate has been contacted, or the un-probed tail no longer matters —
// it cannot lift the aggregate to R0 (the attempt is doomed to rejection)
// and the reminder set has already accumulated busy favoring candidates
// worth exactly R0 (Section 4.2's target), so further probes could change
// neither the admission nor where reminders land. In a crowd where most
// candidates answer busy, this cuts the doomed tail of every sweep.
func (a *Attempt) Next() (idx int, ok bool) {
	if a.admitted || a.pos >= len(a.order) {
		return 0, false
	}
	if a.sum+a.rest < bandwidth.R0 && a.remSum == bandwidth.R0 {
		return 0, false
	}
	return a.order[a.pos], true
}

// consume retires the candidate at the sweep position from the un-probed
// tail.
func (a *Attempt) consume() {
	a.rest -= a.classes[a.order[a.pos]].Offer()
	a.pos++
}

// Down records that the candidate returned by Next was unreachable — the
// paper's transiently "down" case: it yields neither a permission nor a
// reminder target.
func (a *Attempt) Down(idx int) { a.consume() }

// Record feeds the probe response of the candidate returned by Next. A
// grant is accumulated unless it would push the aggregate beyond R0; the
// attempt is admitted the moment the aggregate hits R0 exactly.
func (a *Attempt) Record(idx int, decision dac.Decision, favorsUs bool) {
	a.consume()
	a.outcomes = append(a.outcomes, dac.ProbeOutcome{
		Index:    idx,
		Class:    a.classes[idx],
		Decision: decision,
		FavorsUs: favorsUs,
	})
	offer := a.classes[idx].Offer()
	if decision == dac.DeniedBusy && favorsUs && a.remSum+offer <= bandwidth.R0 {
		// Mirror dac.ReminderTargets' greedy accumulation (probe order is
		// already high class first): once this hits exactly R0 the reminder
		// set is final, whatever the rest of the sweep would answer.
		a.remSum += offer
	}
	if decision != dac.Granted {
		return
	}
	if a.sum+offer > bandwidth.R0 {
		return
	}
	a.sum += offer
	a.chosen = append(a.chosen, idx)
	if a.sum == bandwidth.R0 {
		a.admitted = true
	}
}

// Admitted reports whether the accumulated permissions reached exactly R0.
func (a *Attempt) Admitted() bool { return a.admitted }

// Chosen returns the candidate indices to trigger as session suppliers, in
// probe order (high class first). Valid only when Admitted.
func (a *Attempt) Chosen() []int { return a.chosen }

// ReminderTargets returns the candidate indices on which the rejected
// requester leaves reminders (Section 4.2): busy candidates that favor the
// requester's class, high class first, accumulated up to R0.
func (a *Attempt) ReminderTargets() []int {
	targets := dac.ReminderTargets(a.outcomes)
	idxs := make([]int, len(targets))
	for i, t := range targets {
		idxs[i] = a.outcomes[t].Index
	}
	return idxs
}

// AssignSession computes the OTS_p2p assignment for a session's chosen
// suppliers and checks the Theorem 1 bound (delay = n·δt) before anything
// is triggered — the shared admission-to-streaming handoff of both
// runtimes.
func AssignSession(suppliers []core.Supplier) (*core.Assignment, error) {
	a, err := core.Assign(suppliers)
	if err != nil {
		return nil, fmt.Errorf("protocol: OTS_p2p: %w", err)
	}
	if got, want := a.DelaySlots(), core.OptimalDelaySlots(len(suppliers)); got != want {
		return nil, fmt.Errorf("protocol: Theorem 1 violated: delay %d slots, want %d", got, want)
	}
	return a, nil
}
