package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Chart renders one or more series as an ASCII line chart sized width x
// height characters (plus axes). Each series is drawn with its own marker
// rune; a legend follows the plot. It is intentionally simple — enough for
// experiment binaries to show every figure's shape in a terminal, mirroring
// the gnuplot figures in the paper.
func Chart(title string, width, height int, series ...*Series) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	markers := []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	var tMax time.Duration
	vMin, vMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if n := s.Len(); n > 0 && s.Times[n-1] > tMax {
			tMax = s.Times[n-1]
		}
		if v, ok := s.Min(); ok && v < vMin {
			vMin = v
		}
		if v, ok := s.Max(); ok && v > vMax {
			vMax = v
		}
	}
	if math.IsInf(vMin, 1) { // no data at all
		vMin, vMax = 0, 1
	}
	if vMin > 0 && vMin < vMax/4 {
		vMin = 0 // anchor at zero like the paper's plots when near it
	}
	if vMax == vMin {
		vMax = vMin + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range series {
		marker := markers[si%len(markers)]
		for i := 0; i < s.Len(); i++ {
			if s.Missing(i) {
				continue
			}
			var col int
			if tMax > 0 {
				col = int(float64(s.Times[i]) / float64(tMax) * float64(width-1))
			}
			row := height - 1 - int((s.Values[i]-vMin)/(vMax-vMin)*float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[row][col] = marker
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, rowRunes := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%10.1f", vMax)
		case height - 1:
			label = fmt.Sprintf("%10.1f", vMin)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(rowRunes))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  0h%*s\n", strings.Repeat(" ", 10), width-3, fmt.Sprintf("%.0fh", tMax.Hours()))
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}
