package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestChartRendersSeriesAndLegend(t *testing.T) {
	a := &Series{Name: "capacity"}
	b := &Series{Name: "admission"}
	for h := 0; h <= 10; h++ {
		at := time.Duration(h) * time.Hour
		a.Add(at, float64(h*h))
		b.Add(at, 100-float64(h))
	}
	out := Chart("Figure 4", 40, 10, a, b)

	if !strings.HasPrefix(out, "Figure 4\n") {
		t.Errorf("missing title:\n%s", out)
	}
	for _, want := range []string{"capacity", "admission", "10h", "0h"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart lacks %q:\n%s", want, out)
		}
	}
	// Each series draws with its own marker.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("series markers missing:\n%s", out)
	}
	// Axis labels carry the value range (max 100 from series b).
	if !strings.Contains(out, "100.0") {
		t.Errorf("max label missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + time labels + one legend row per series.
	if want := 1 + 10 + 1 + 1 + 2; len(lines) != want {
		t.Errorf("chart has %d lines, want %d:\n%s", len(lines), want, out)
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(0, 1)
	s.Add(time.Hour, 2)
	out := Chart("t", 1, 1, s)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Width clamps to 10, height to 4.
	if want := 1 + 4 + 1 + 1 + 1; len(lines) != want {
		t.Errorf("clamped chart has %d lines, want %d:\n%s", len(lines), want, out)
	}
	for _, row := range lines[1:5] {
		if got := len(row); got != len("    9999.0 |")+10 {
			t.Errorf("row %q width %d", row, got)
		}
	}
}

func TestChartEmptyAndMissingSeries(t *testing.T) {
	empty := &Series{Name: "empty"}
	out := Chart("nothing", 20, 5, empty)
	if !strings.Contains(out, "empty") {
		t.Errorf("legend missing for empty series:\n%s", out)
	}
	// No data: the value range defaults to [0, 1] without panicking.
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "0.0") {
		t.Errorf("default range labels missing:\n%s", out)
	}

	gaps := &Series{Name: "gaps"}
	gaps.AddMissing(0)
	gaps.Add(time.Hour, 5)
	gaps.AddMissing(2 * time.Hour)
	out = Chart("gaps", 20, 5, gaps)
	grid := strings.Join(strings.Split(out, "\n")[1:6], "\n") // plot rows only
	if strings.Count(grid, "*") != 1 {
		t.Errorf("missing samples must not be plotted:\n%s", out)
	}
}

func TestChartFlatSeriesDoesNotDivideByZero(t *testing.T) {
	s := &Series{Name: "flat"}
	s.Add(0, 7)
	s.Add(time.Hour, 7)
	out := Chart("flat", 20, 5, s)
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}
