// Package metrics provides the measurement plumbing for the evaluation:
// time series sampled on the simulator clock, per-class accumulators, CSV
// emission, and a small ASCII chart renderer so experiment binaries can show
// every figure's shape directly in a terminal.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Series is a time-ordered sequence of (time, value) samples.
type Series struct {
	Name    string
	Times   []time.Duration
	Values  []float64
	missing []bool
}

// Add appends a sample. Samples must be appended in non-decreasing time
// order; Add panics otherwise (it indicates a simulator bug).
func (s *Series) Add(t time.Duration, v float64) {
	if n := len(s.Times); n > 0 && t < s.Times[n-1] {
		panic(fmt.Sprintf("metrics: sample at %v after %v", t, s.Times[n-1]))
	}
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
	s.missing = append(s.missing, false)
}

// AddMissing appends a placeholder for a time where the metric was
// undefined (e.g. an average over an empty population). Missing samples are
// skipped by Min/Max/At and rendered as blanks in CSV.
func (s *Series) AddMissing(t time.Duration) {
	if n := len(s.Times); n > 0 && t < s.Times[n-1] {
		panic(fmt.Sprintf("metrics: sample at %v after %v", t, s.Times[n-1]))
	}
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, math.NaN())
	s.missing = append(s.missing, true)
}

// Len returns the number of samples (including missing placeholders).
func (s *Series) Len() int { return len(s.Times) }

// Missing reports whether sample i is a placeholder.
func (s *Series) Missing(i int) bool { return s.missing[i] }

// At returns the last defined value at or before t, and false if there is
// none.
func (s *Series) At(t time.Duration) (float64, bool) {
	idx := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] > t }) - 1
	for ; idx >= 0; idx-- {
		if !s.missing[idx] {
			return s.Values[idx], true
		}
	}
	return 0, false
}

// Last returns the final defined value, and false if the series has none.
func (s *Series) Last() (float64, bool) {
	for i := len(s.Values) - 1; i >= 0; i-- {
		if !s.missing[i] {
			return s.Values[i], true
		}
	}
	return 0, false
}

// Min and Max return the smallest and largest defined values; ok is false
// for an all-missing series.
func (s *Series) Min() (float64, bool) { return s.extreme(func(a, b float64) bool { return a < b }) }

// Max returns the largest defined value.
func (s *Series) Max() (float64, bool) { return s.extreme(func(a, b float64) bool { return a > b }) }

func (s *Series) extreme(better func(a, b float64) bool) (float64, bool) {
	found := false
	var best float64
	for i, v := range s.Values {
		if s.missing[i] {
			continue
		}
		if !found || better(v, best) {
			best, found = v, true
		}
	}
	return best, found
}

// WriteCSV emits one or more series sharing a time axis as CSV with the
// time in hours in the first column. All series must have identical sample
// times; it returns an error otherwise.
func WriteCSV(w io.Writer, series ...*Series) error {
	return WriteCSVIn(w, "hours", time.Hour, series...)
}

// WriteCSVIn is WriteCSV with a caller-chosen time column: the first
// column is named col and holds each sample time divided by unit. The
// multi-hour simulator traces use hours; millisecond-scale scenario runs
// use milliseconds.
func WriteCSVIn(w io.Writer, col string, unit time.Duration, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("metrics: no series")
	}
	if unit <= 0 {
		return fmt.Errorf("metrics: non-positive time unit %v", unit)
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() != n {
			return fmt.Errorf("metrics: series %q has %d samples, want %d", s.Name, s.Len(), n)
		}
	}
	header := make([]string, 0, len(series)+1)
	header = append(header, col)
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%.3f", float64(series[0].Times[i])/float64(unit)))
		for _, s := range series {
			if s.Times[i] != series[0].Times[i] {
				return fmt.Errorf("metrics: series %q sample %d at %v, want %v", s.Name, i, s.Times[i], series[0].Times[i])
			}
			if s.missing[i] {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%.4f", s.Values[i]))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// PerClass accumulates per-class counters and sums indexed by class number
// (1-based). It backs the paper's per-class metrics: admissions, rejections,
// buffering delay.
type PerClass struct {
	k      int
	counts []int64
	sums   []float64
}

// NewPerClass returns accumulators for classes 1..k.
func NewPerClass(k int) *PerClass {
	return &PerClass{k: k, counts: make([]int64, k+1), sums: make([]float64, k+1)}
}

// Observe adds a value for the given class. Out-of-range classes panic (a
// simulator bug, not an input condition).
func (p *PerClass) Observe(class int, v float64) {
	if class < 1 || class > p.k {
		panic(fmt.Sprintf("metrics: class %d outside [1,%d]", class, p.k))
	}
	p.counts[class]++
	p.sums[class] += v
}

// Count returns how many observations class has.
func (p *PerClass) Count(class int) int64 { return p.counts[class] }

// Sum returns the observation total for class.
func (p *PerClass) Sum(class int) float64 { return p.sums[class] }

// Mean returns the class average and false if the class has no samples.
func (p *PerClass) Mean(class int) (float64, bool) {
	if p.counts[class] == 0 {
		return 0, false
	}
	return p.sums[class] / float64(p.counts[class]), true
}

// TotalCount returns observations across every class.
func (p *PerClass) TotalCount() int64 {
	var t int64
	for c := 1; c <= p.k; c++ {
		t += p.counts[c]
	}
	return t
}

// TotalMean returns the mean across every class (false if empty).
func (p *PerClass) TotalMean() (float64, bool) {
	n := p.TotalCount()
	if n == 0 {
		return 0, false
	}
	var s float64
	for c := 1; c <= p.k; c++ {
		s += p.sums[c]
	}
	return s / float64(n), true
}
