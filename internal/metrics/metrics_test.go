package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesAddAndAt(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(time.Hour, 2)
	s.Add(2*time.Hour, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	tests := []struct {
		at   time.Duration
		want float64
		ok   bool
	}{
		{-time.Second, 0, false},
		{0, 1, true},
		{30 * time.Minute, 1, true},
		{time.Hour, 2, true},
		{3 * time.Hour, 3, true},
	}
	for _, tt := range tests {
		got, ok := s.At(tt.at)
		if ok != tt.ok || got != tt.want {
			t.Errorf("At(%v) = %g,%v want %g,%v", tt.at, got, ok, tt.want, tt.ok)
		}
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add should panic")
		}
	}()
	var s Series
	s.Add(time.Hour, 1)
	s.Add(0, 2)
}

func TestSeriesMissing(t *testing.T) {
	var s Series
	s.AddMissing(0)
	s.Add(time.Hour, 5)
	s.AddMissing(2 * time.Hour)
	if !s.Missing(0) || s.Missing(1) || !s.Missing(2) {
		t.Error("Missing flags wrong")
	}
	if v, ok := s.At(0); ok || v != 0 {
		t.Error("At over missing-only prefix should report not ok")
	}
	if v, ok := s.At(3 * time.Hour); !ok || v != 5 {
		t.Errorf("At should skip trailing missing samples, got %g,%v", v, ok)
	}
	if v, ok := s.Last(); !ok || v != 5 {
		t.Errorf("Last = %g,%v", v, ok)
	}
	if v, ok := s.Min(); !ok || v != 5 {
		t.Errorf("Min = %g,%v", v, ok)
	}
	if v, ok := s.Max(); !ok || v != 5 {
		t.Errorf("Max = %g,%v", v, ok)
	}
}

func TestSeriesEmptyAggregates(t *testing.T) {
	var s Series
	if _, ok := s.Last(); ok {
		t.Error("Last on empty should be not-ok")
	}
	if _, ok := s.Min(); ok {
		t.Error("Min on empty should be not-ok")
	}
	s.AddMissing(0)
	if _, ok := s.Max(); ok {
		t.Error("Max on all-missing should be not-ok")
	}
}

func TestSeriesMinMax(t *testing.T) {
	var s Series
	for i, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(time.Duration(i)*time.Hour, v)
	}
	if v, _ := s.Min(); v != 1 {
		t.Errorf("Min = %g", v)
	}
	if v, _ := s.Max(); v != 5 {
		t.Errorf("Max = %g", v)
	}
}

func TestWriteCSV(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Add(0, 1)
	a.AddMissing(time.Hour)
	b.Add(0, 10)
	b.Add(time.Hour, 20)
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "hours,a,b\n0.000,1.0000,10.0000\n1.000,,20.0000\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// TestWriteCSVIn: the caller-chosen time column scales millisecond-range
// scenario samples that the hour column would flatten to zero.
func TestWriteCSVIn(t *testing.T) {
	a := &Series{Name: "lat"}
	a.Add(1500*time.Microsecond, 3)
	a.Add(2*time.Second, 4)
	var sb strings.Builder
	if err := WriteCSVIn(&sb, "ms", time.Millisecond, a); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "ms,lat\n1.500,3.0000\n2000.000,4.0000\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	if err := WriteCSVIn(&sb, "x", 0, a); err == nil {
		t.Error("non-positive unit should fail")
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb); err == nil {
		t.Error("no series should fail")
	}
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Add(0, 1)
	if err := WriteCSV(&sb, a, b); err == nil {
		t.Error("length mismatch should fail")
	}
	b.Add(time.Hour, 1)
	if err := WriteCSV(&sb, a, b); err == nil {
		t.Error("time mismatch should fail")
	}
}

func TestPerClass(t *testing.T) {
	p := NewPerClass(4)
	p.Observe(1, 2)
	p.Observe(1, 4)
	p.Observe(3, 9)
	if p.Count(1) != 2 || p.Count(2) != 0 || p.Count(3) != 1 {
		t.Error("counts wrong")
	}
	if p.Sum(1) != 6 {
		t.Errorf("Sum(1) = %g", p.Sum(1))
	}
	if m, ok := p.Mean(1); !ok || m != 3 {
		t.Errorf("Mean(1) = %g,%v", m, ok)
	}
	if _, ok := p.Mean(2); ok {
		t.Error("Mean of empty class should be not-ok")
	}
	if p.TotalCount() != 3 {
		t.Errorf("TotalCount = %d", p.TotalCount())
	}
	if m, ok := p.TotalMean(); !ok || m != 5 {
		t.Errorf("TotalMean = %g,%v", m, ok)
	}
	empty := NewPerClass(2)
	if _, ok := empty.TotalMean(); ok {
		t.Error("TotalMean of empty should be not-ok")
	}
}

func TestPerClassPanicsOutOfRange(t *testing.T) {
	p := NewPerClass(2)
	for _, c := range []int{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Observe(%d) should panic", c)
				}
			}()
			p.Observe(c, 1)
		}()
	}
}

func TestChartRendersAllSeries(t *testing.T) {
	a := &Series{Name: "dac"}
	b := &Series{Name: "ndac"}
	for h := 0; h <= 10; h++ {
		a.Add(time.Duration(h)*time.Hour, float64(h*h))
		b.Add(time.Duration(h)*time.Hour, float64(h))
	}
	out := Chart("capacity", 40, 10, a, b)
	if !strings.Contains(out, "capacity") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "dac") || !strings.Contains(out, "ndac") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing series markers")
	}
	if !strings.Contains(out, "10h") {
		t.Error("missing time axis label")
	}
}

func TestChartDegenerate(t *testing.T) {
	// Empty series, constant series, tiny dimensions: must not panic.
	empty := &Series{Name: "empty"}
	constant := &Series{Name: "const"}
	constant.Add(0, 5)
	constant.Add(time.Hour, 5)
	for _, s := range []*Series{empty, constant} {
		if out := Chart("t", 1, 1, s); out == "" {
			t.Error("chart should render something")
		}
	}
	var missing Series
	missing.AddMissing(0)
	if out := Chart("t", 30, 8, &missing); out == "" {
		t.Error("all-missing series should render")
	}
}
