package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Distribution accumulates scalar observations for quantile summaries. At
// population scale a mean hides the tail that the paper's admission story
// is about, so the megacrowd reports assert quantiles instead. Observations
// arrive in any order; quantiles sort lazily and cache until the next
// Observe. Not safe for concurrent use — reports are built single-threaded
// after a run.
type Distribution struct {
	Name   string
	vals   []float64
	sorted bool
}

// NewDistribution returns an empty named distribution.
func NewDistribution(name string) *Distribution { return &Distribution{Name: name} }

// Observe adds one observation.
func (d *Distribution) Observe(v float64) {
	d.vals = append(d.vals, v)
	d.sorted = false
}

// Count returns the number of observations.
func (d *Distribution) Count() int { return len(d.vals) }

func (d *Distribution) sortNow() {
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
}

// Quantile returns the q-quantile (q in [0,1]) with linear interpolation
// between order statistics; ok is false for an empty distribution or a q
// outside [0,1].
func (d *Distribution) Quantile(q float64) (float64, bool) {
	if len(d.vals) == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return 0, false
	}
	d.sortNow()
	pos := q * float64(len(d.vals)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.vals[lo], true
	}
	frac := pos - float64(lo)
	return d.vals[lo]*(1-frac) + d.vals[hi]*frac, true
}

// Min and Max return the extreme observations (ok false when empty).
func (d *Distribution) Min() (float64, bool) { return d.Quantile(0) }

// Max returns the largest observation.
func (d *Distribution) Max() (float64, bool) { return d.Quantile(1) }

// Mean returns the arithmetic mean (ok false when empty).
func (d *Distribution) Mean() (float64, bool) {
	if len(d.vals) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, v := range d.vals {
		sum += v
	}
	return sum / float64(len(d.vals)), true
}

// Summary renders "name: n=…, p50=…, p90=…, p99=…, max=…" for digests.
func (d *Distribution) Summary() string {
	if len(d.vals) == 0 {
		return fmt.Sprintf("%s: empty", d.Name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d", d.Name, len(d.vals))
	for _, q := range []struct {
		label string
		q     float64
	}{{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}} {
		v, _ := d.Quantile(q.q)
		fmt.Fprintf(&b, ", %s=%.2f", q.label, v)
	}
	max, _ := d.Max()
	fmt.Fprintf(&b, ", max=%.2f", max)
	return b.String()
}

// QuantileSeries distills the running distribution of a metric over time
// into quantile trajectories: given completion-ordered (time, value) pairs,
// it emits, at up to maxPoints evenly spread checkpoints, the q-quantiles
// of everything observed so far — one Series per requested q, sharing one
// time axis (so WriteCSVIn can emit them as a single table). This is how a
// hundred-thousand-sample megacrowd run charts its admission-latency tail
// without a per-sample running sort.
func QuantileSeries(name string, times []time.Duration, values []float64, maxPoints int, qs ...float64) []*Series {
	if len(times) != len(values) {
		panic(fmt.Sprintf("metrics: %d times for %d values", len(times), len(values)))
	}
	n := len(values)
	out := make([]*Series, len(qs))
	for i, q := range qs {
		out[i] = &Series{Name: fmt.Sprintf("%s_p%g", name, q*100)}
	}
	if n == 0 || len(qs) == 0 {
		return out
	}
	if maxPoints < 1 {
		maxPoints = 1
	}
	step := 1
	if n > maxPoints {
		step = (n + maxPoints - 1) / maxPoints
	}
	sorted := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if (i+1)%step != 0 && i != n-1 {
			continue
		}
		sorted = append(sorted[:0], values[:i+1]...)
		sort.Float64s(sorted)
		for j, q := range qs {
			out[j].Add(times[i], quantileSorted(sorted, q))
		}
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
