package metrics

import (
	"math"
	"testing"
	"time"
)

func TestDistributionQuantiles(t *testing.T) {
	d := NewDistribution("lat")
	if _, ok := d.Quantile(0.5); ok {
		t.Error("empty distribution reported a quantile")
	}
	// 1..100 in shuffled-ish order: quantiles must not depend on insertion
	// order.
	for i := 0; i < 100; i++ {
		d.Observe(float64((i*37)%100 + 1))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, c := range cases {
		got, ok := d.Quantile(c.q)
		if !ok || math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, %v; want %v", c.q, got, ok, c.want)
		}
	}
	if m, ok := d.Mean(); !ok || math.Abs(m-50.5) > 1e-9 {
		t.Errorf("Mean = %v, %v; want 50.5", m, ok)
	}
	if _, ok := d.Quantile(1.5); ok {
		t.Error("out-of-range quantile reported ok")
	}
	d.Observe(1000) // cache invalidation: new max must surface
	if max, _ := d.Max(); max != 1000 {
		t.Errorf("Max after new observation = %v, want 1000", max)
	}
	if s := d.Summary(); s == "" || s == "lat: empty" {
		t.Errorf("Summary = %q", s)
	}
}

func TestQuantileSeries(t *testing.T) {
	n := 1000
	times := make([]time.Duration, n)
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		times[i] = time.Duration(i) * time.Millisecond
		values[i] = float64(i)
	}
	series := QuantileSeries("adm", times, values, 64, 0.5, 0.99)
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	p50, p99 := series[0], series[1]
	if p50.Name != "adm_p50" || p99.Name != "adm_p99" {
		t.Errorf("names %q, %q", p50.Name, p99.Name)
	}
	if p50.Len() == 0 || p50.Len() > 65 {
		t.Fatalf("checkpoint count %d, want 1..65", p50.Len())
	}
	if p50.Len() != p99.Len() {
		t.Fatalf("axes differ: %d vs %d", p50.Len(), p99.Len())
	}
	// The final checkpoint covers the whole population.
	last50, _ := p50.Last()
	last99, _ := p99.Last()
	if math.Abs(last50-499.5) > 1e-9 {
		t.Errorf("final p50 = %v, want 499.5", last50)
	}
	if math.Abs(last99-float64(n-1)*0.99) > 1e-9 {
		t.Errorf("final p99 = %v, want %v", last99, float64(n-1)*0.99)
	}
	// Monotone population, so the running p50 trajectory must be
	// non-decreasing, and p99 must dominate p50 at every checkpoint.
	for i := 1; i < p50.Len(); i++ {
		if p50.Values[i] < p50.Values[i-1] {
			t.Fatalf("running p50 decreased at %d", i)
		}
	}
	for i := 0; i < p50.Len(); i++ {
		if p99.Values[i] < p50.Values[i] {
			t.Fatalf("p99 < p50 at checkpoint %d", i)
		}
	}
	// Empty input: named, empty series — callers can still chart them.
	empty := QuantileSeries("e", nil, nil, 10, 0.5)
	if len(empty) != 1 || empty[0].Len() != 0 {
		t.Errorf("empty input gave %+v", empty)
	}
}
