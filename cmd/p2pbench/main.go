// Command p2pbench regenerates the paper's evaluation artifacts: every
// figure (4-9) and Table 1, plus the worked examples of Figures 1 and 3.
//
// Usage:
//
//	p2pbench [-exp all|fig1|fig3|fig4|fig5|fig6|table1|fig7|fig8a|fig8b|fig9]
//	         [-scale full|reduced] [-out results]
//
// Reports are printed to stdout; raw series are written as CSV files under
// the output directory (one subdirectory per experiment).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"p2pstream/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: 'all' (paper artifacts), 'all-ext' (paper + ablations/replication), or one of "+
		strings.Join(append(experiments.IDs(), experiments.ExtensionIDs()...), ", "))
	scaleName := flag.String("scale", "full", "workload scale: 'full' (paper: 50,100 peers, 144h) or 'reduced'")
	out := flag.String("out", "results", "output directory for CSV series ('' to skip writing)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "full":
		scale = experiments.FullScale
	case "reduced":
		scale = experiments.ReducedScale
	default:
		fmt.Fprintf(os.Stderr, "p2pbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	runner := experiments.NewRunner(scale)
	var reports []*experiments.Report
	start := time.Now()
	switch *exp {
	case "all":
		var err error
		reports, err = runner.All()
		if err != nil {
			fatal(err)
		}
	case "all-ext":
		var err error
		reports, err = runner.AllWithExtensions()
		if err != nil {
			fatal(err)
		}
	default:
		rep, err := runner.Run(*exp)
		if err != nil {
			fatal(err)
		}
		reports = []*experiments.Report{rep}
	}

	for _, rep := range reports {
		fmt.Printf("==== %s: %s ====\n\n%s\n", rep.ID, rep.Title, rep.Text)
		if *out == "" {
			continue
		}
		dir := filepath.Join(*out, rep.ID)
		if len(rep.CSV) > 0 {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		for _, name := range rep.SortedCSVNames() {
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, []byte(rep.CSV[name]), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}
	fmt.Printf("completed %d experiment(s) at %s scale in %v\n", len(reports), scale.Name, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "p2pbench: %v\n", err)
	os.Exit(1)
}
