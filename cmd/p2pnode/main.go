// Command p2pnode runs one live peer of the streaming overlay.
//
// A seed peer (possesses the media, supplies immediately):
//
//	p2pnode -id seed1 -class 1 -seed-peer -dir 127.0.0.1:7000
//
// A requesting peer (requests the stream, plays it back, then supplies):
//
//	p2pnode -id peer1 -class 2 -dir 127.0.0.1:7000
//
// Against a sharded directory (see p2pdir -shards), list every shard in
// shard order; registrations route to the owning shard by consistent
// hashing and candidate lookups fan out across all of them:
//
//	p2pnode -id peer1 -class 2 -dir-addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// With -discovery chord the overlay needs no directory server at all:
// supplying peers form a wire-level Chord ring. The first seed founds the
// ring; everyone else names any member's chord endpoint:
//
//	p2pnode -id seed1 -class 1 -seed-peer -discovery chord -chord-listen 127.0.0.1:7100
//	p2pnode -id peer1 -class 2 -discovery chord -chord-bootstrap 127.0.0.1:7100
//
// The media item is synthetic (deterministic content, CBR) and scaled so a
// session finishes in seconds; -segments and -dt control the size.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p2pstream/internal/bandwidth"
	"p2pstream/internal/chordnet"
	"p2pstream/internal/clock"
	"p2pstream/internal/dac"
	"p2pstream/internal/directory"
	"p2pstream/internal/media"
	"p2pstream/internal/netx"
	"p2pstream/internal/node"
)

func main() {
	id := flag.String("id", "", "unique peer name (required)")
	class := flag.Int("class", 2, "bandwidth class (1 = R0/2, 2 = R0/4, ...)")
	numClasses := flag.Int("classes", 4, "number of classes K")
	discovery := flag.String("discovery", "directory", "discovery backend: directory or chord")
	dirAddr := flag.String("dir", "127.0.0.1:7000", "directory server address (directory backend)")
	dirAddrs := flag.String("dir-addrs", "", "comma-separated sharded-directory addresses in shard order (directory backend; overrides -dir)")
	bootstrap := flag.String("chord-bootstrap", "", "comma-separated chord endpoints of ring members (chord backend; empty founds a new ring)")
	chordListen := flag.String("chord-listen", "127.0.0.1:0", "chord endpoint to listen on (chord backend)")
	seedPeer := flag.Bool("seed-peer", false, "start with the complete file and supply immediately")
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	segments := flag.Int("segments", 120, "number of media segments")
	dt := flag.Duration("dt", 50*time.Millisecond, "segment playback time (delta t)")
	m := flag.Int("m", 8, "candidates probed per request")
	tout := flag.Duration("tout", 2*time.Second, "idle elevation timeout")
	attempts := flag.Int("attempts", 10, "max admission attempts before giving up")
	ndac := flag.Bool("ndac", false, "use the NDAC_p2p baseline when supplying")
	rngSeed := flag.Int64("rng", time.Now().UnixNano(), "admission randomness seed")
	flag.Parse()

	if *id == "" {
		fmt.Fprintln(os.Stderr, "p2pnode: -id is required")
		os.Exit(2)
	}
	policy := dac.DAC
	if *ndac {
		policy = dac.NDAC
	}
	var disc node.Discovery
	switch *discovery {
	case "directory":
		// Leaving Discovery nil selects a directory client for -dir; with
		// -dir-addrs the registry is sharded by consistent hashing and the
		// node routes through a sharded client instead. Every peer of one
		// deployment must list the same addresses in the same order.
		if *dirAddrs != "" {
			var addrs []string
			for _, a := range strings.Split(*dirAddrs, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
			sc, err := directory.NewShardedClient(directory.ShardedConfig{
				Addrs: addrs,
				Seed:  *rngSeed,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("p2pnode %s: sharded directory, %d shards\n", *id, sc.Shards())
			disc = sc
		}
	case "chord":
		var boots []string
		for _, a := range strings.Split(*bootstrap, ",") {
			if a = strings.TrimSpace(a); a != "" {
				boots = append(boots, a)
			}
		}
		cp, err := chordnet.New(chordnet.Config{
			ID:         *id,
			Class:      bandwidth.Class(*class),
			Bootstrap:  boots,
			ListenAddr: *chordListen,
			Seed:       *rngSeed,
		})
		if err != nil {
			fatal(err)
		}
		if err := cp.Start(); err != nil {
			fatal(err)
		}
		fmt.Printf("p2pnode %s: chord endpoint %s\n", *id, cp.Addr())
		disc = cp
	default:
		fmt.Fprintf(os.Stderr, "p2pnode: unknown -discovery %q (want directory or chord)\n", *discovery)
		os.Exit(2)
	}
	cfg := node.Config{
		ID:            *id,
		Class:         bandwidth.Class(*class),
		NumClasses:    bandwidth.Class(*numClasses),
		Policy:        policy,
		Discovery:     disc,
		DirectoryAddr: *dirAddr,
		File: &media.File{
			Name:         "popular-video",
			Segments:     *segments,
			SegmentBytes: 4096,
			SegmentTime:  *dt,
		},
		M:          *m,
		TOut:       *tout,
		Backoff:    dac.BackoffConfig{Base: 500 * time.Millisecond, Factor: 2},
		ListenAddr: *listen,
		Seed:       *rngSeed,
		// A live peer runs the shared session layer on the wall clock over
		// real TCP; tests run the same node on a virtual clock and network.
		Clock:   clock.System(),
		Network: netx.System,
	}

	var n *node.Node
	var err error
	if *seedPeer {
		n, err = node.NewSeed(cfg)
	} else {
		n, err = node.NewRequester(cfg)
	}
	if err != nil {
		fatal(err)
	}
	if err := n.Start(); err != nil {
		fatal(err)
	}
	defer n.Close()
	fmt.Printf("p2pnode %s: class-%d, listening on %s\n", *id, *class, n.Addr())

	if !*seedPeer {
		report, err := n.RequestUntilAdmitted(*attempts)
		if err != nil {
			if report == nil {
				fatal(err)
			}
			// Served, but the post-session registration failed (e.g. the
			// peer's registry shard is down). The node holds the file and
			// supplies; a sharded client's lease re-registers it when the
			// shard returns.
			fmt.Printf("p2pnode: served, registration pending: %v\n", err)
		}
		fmt.Printf("admitted after %d rejection(s); %d suppliers:", report.Rejections, len(report.Suppliers))
		for _, s := range report.Suppliers {
			fmt.Printf(" %s(%v)", s.ID, s.Class)
		}
		fmt.Println()
		fmt.Printf("received %d bytes in %v\n", report.Bytes, report.Duration.Round(time.Millisecond))
		fmt.Printf("buffering delay: theoretical %v (n*dt), measured %v; playback %s\n",
			report.TheoreticalDelay, report.MeasuredDelay.Round(time.Millisecond), playbackStatus(report))
		fmt.Println("now supplying")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("p2pnode: shutting down")
}

func playbackStatus(r *node.SessionReport) string {
	if r.Report.Continuous() {
		return "continuous (no stalls)"
	}
	return fmt.Sprintf("%d stalls", r.Report.Stalls)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "p2pnode: %v\n", err)
	os.Exit(1)
}
