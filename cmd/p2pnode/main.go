// Command p2pnode runs one live peer of the streaming overlay, built on
// the public p2pstream.Overlay entrypoint.
//
// A seed peer (possesses the media, supplies immediately):
//
//	p2pnode -id seed1 -class 1 -seed-peer -dir 127.0.0.1:7000
//
// A requesting peer (requests the stream, plays it back, then supplies):
//
//	p2pnode -id peer1 -class 2 -dir 127.0.0.1:7000
//
// Against a sharded directory (see p2pdir -shards), list every shard in
// shard order; registrations route to the owning shard by consistent
// hashing and candidate lookups fan out across all of them:
//
//	p2pnode -id peer1 -class 2 -dir-addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// With -discovery chord the overlay needs no directory server at all:
// supplying peers form a wire-level Chord ring. The first seed founds the
// ring; everyone else names any member's chord endpoint:
//
//	p2pnode -id seed1 -class 1 -seed-peer -discovery chord -chord-listen 127.0.0.1:7100
//	p2pnode -id peer1 -class 2 -discovery chord -chord-bootstrap 127.0.0.1:7100
//
// The whole request path is context-driven: Ctrl-C cancels an in-flight
// request (probes, session streams and discovery RPCs abort) instead of
// leaving the process wedged, and -timeout bounds the request end to end.
//
// The media item is synthetic (deterministic content, CBR) and scaled so a
// session finishes in seconds; -segments and -dt control the size.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p2pstream"
)

func main() {
	id := flag.String("id", "", "unique peer name (required)")
	class := flag.Int("class", 2, "bandwidth class (1 = R0/2, 2 = R0/4, ...)")
	numClasses := flag.Int("classes", 4, "number of classes K")
	discovery := flag.String("discovery", "directory", "discovery backend: directory or chord")
	dirAddr := flag.String("dir", "127.0.0.1:7000", "directory server address (directory backend)")
	dirAddrs := flag.String("dir-addrs", "", "comma-separated sharded-directory addresses in shard order (directory backend; overrides -dir)")
	dirEpochs := flag.Bool("dir-epochs", false, "follow resharding epoch pushes from an elastic directory deployment (p2pdir -autoscale; needs -dir-addrs)")
	bootstrap := flag.String("chord-bootstrap", "", "comma-separated chord endpoints of ring members (chord backend; empty founds a new ring)")
	chordListen := flag.String("chord-listen", "127.0.0.1:0", "chord endpoint to listen on (chord backend)")
	seedPeer := flag.Bool("seed-peer", false, "start with the complete file and supply immediately")
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	segments := flag.Int("segments", 120, "number of media segments")
	dt := flag.Duration("dt", 50*time.Millisecond, "segment playback time (delta t)")
	objects := flag.String("objects", "", "comma-separated object names for a multi-object overlay (each an item of -segments segments; empty runs the single default file)")
	held := flag.String("held", "", "comma-separated objects a multi-object seed holds (empty = all of -objects)")
	request := flag.String("request", "", "object a multi-object requester streams (empty = the first of -objects)")
	cacheBudget := flag.Int64("cache-budget", 0, "library byte budget per peer; exceeding it evicts the LRU object (0 = unbounded)")
	sessionSlots := flag.Int("session-slots", 0, "concurrent supplying sessions per peer across objects (0 = one)")
	m := flag.Int("m", 8, "candidates probed per request")
	tout := flag.Duration("tout", 2*time.Second, "idle elevation timeout")
	attempts := flag.Int("attempts", 10, "max admission attempts before giving up")
	timeout := flag.Duration("timeout", 0, "overall deadline for the streaming request (0 = none)")
	ndac := flag.Bool("ndac", false, "use the NDAC_p2p baseline when supplying")
	rngSeed := flag.Int64("rng", time.Now().UnixNano(), "admission randomness seed")
	flag.Parse()

	if *id == "" {
		fmt.Fprintln(os.Stderr, "p2pnode: -id is required")
		os.Exit(2)
	}
	policy := p2pstream.DAC
	if *ndac {
		policy = p2pstream.NDAC
	}

	// Ctrl-C / SIGTERM cancel the context; an in-flight request aborts
	// cleanly (probes, streams and discovery RPCs all honor it).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []p2pstream.OverlayOption{
		p2pstream.WithClasses(p2pstream.Class(*numClasses)),
		p2pstream.WithPolicy(policy),
		p2pstream.WithProbeFanout(*m),
		p2pstream.WithIdleTimeout(*tout),
		p2pstream.WithBackoff(p2pstream.BackoffConfig{Base: 500 * time.Millisecond, Factor: 2}),
		p2pstream.WithSeed(*rngSeed),
	}
	switch *discovery {
	case "directory":
		if *dirAddrs != "" {
			// Every peer of one deployment must list the same shard
			// addresses in the same order: the consistent-hash ring maps
			// supplier keys to indices of this list. Even a single-entry
			// list goes through the sharded client: -dir-addrs always
			// buys the lease-style re-registration that repopulates a
			// crashed-and-reborn server.
			addrs := splitList(*dirAddrs)
			opts = append(opts, p2pstream.WithShardedDirectory(p2pstream.ShardedDirectoryConfig{Addrs: addrs}))
			if *dirEpochs {
				opts = append(opts, p2pstream.WithShardEpochs())
				fmt.Printf("p2pnode %s: elastic sharded directory, %d initial shards\n", *id, len(addrs))
			} else {
				fmt.Printf("p2pnode %s: sharded directory, %d shards\n", *id, len(addrs))
			}
		} else {
			if *dirEpochs {
				fmt.Fprintln(os.Stderr, "p2pnode: -dir-epochs needs -dir-addrs (the elastic deployment's initial shard list)")
				os.Exit(2)
			}
			opts = append(opts, p2pstream.WithDirectory(*dirAddr))
		}
	case "chord":
		opts = append(opts, p2pstream.WithChord(p2pstream.ChordDiscoveryConfig{
			Bootstrap: splitList(*bootstrap),
		}))
	default:
		fmt.Fprintf(os.Stderr, "p2pnode: unknown -discovery %q (want directory or chord)\n", *discovery)
		os.Exit(2)
	}

	mediaItem := func(name string) *p2pstream.MediaFile {
		return &p2pstream.MediaFile{
			Name:         name,
			Segments:     *segments,
			SegmentBytes: 4096,
			SegmentTime:  *dt,
		}
	}
	var file *p2pstream.MediaFile
	if names := splitList(*objects); len(names) > 0 {
		catalog := make([]*p2pstream.MediaFile, len(names))
		for i, name := range names {
			catalog[i] = mediaItem(name)
		}
		opts = append(opts, p2pstream.WithLibrary(catalog...))
		if *cacheBudget > 0 {
			opts = append(opts, p2pstream.WithCacheBudget(*cacheBudget))
		}
		if *sessionSlots > 0 {
			opts = append(opts, p2pstream.WithSessionSlots(*sessionSlots))
		}
	} else {
		file = mediaItem("popular-video")
	}
	ov, err := p2pstream.NewOverlay(file, opts...)
	if err != nil {
		fatal(err)
	}
	defer ov.Close()

	peer := p2pstream.OverlayPeer{
		ID:                  *id,
		Class:               p2pstream.Class(*class),
		ListenAddr:          *listen,
		DiscoveryListenAddr: *chordListen,
		Held:                splitList(*held),
	}
	var n *p2pstream.Node
	if *seedPeer {
		n, err = ov.Seed(ctx, peer)
	} else {
		n, err = ov.Requester(ctx, peer)
	}
	if err != nil {
		fatal(err)
	}
	if ep := ov.DiscoveryEndpoint(*id); ep != "" {
		fmt.Printf("p2pnode %s: chord endpoint %s\n", *id, ep)
	}
	fmt.Printf("p2pnode %s: class-%d, listening on %s\n", *id, *class, n.Addr())

	if !*seedPeer {
		reqCtx, cancel := ctx, context.CancelFunc(func() {})
		if *timeout > 0 {
			reqCtx, cancel = context.WithTimeout(ctx, *timeout)
		}
		report, err := n.RequestUntilAdmitted(reqCtx, *request, *attempts)
		cancel()
		switch {
		case err == nil:
		case report != nil:
			// Served, with only the post-session registration failing —
			// whether the owner shard refused or the cancellation/deadline
			// landed right then. The node holds the file and supplies; a
			// sharded client's lease re-registers it when the shard
			// returns. Don't discard a completed session.
			fmt.Printf("p2pnode: served, registration pending: %v\n", err)
		case errors.Is(err, context.Canceled):
			fmt.Println("p2pnode: request cancelled")
			return
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Println("p2pnode: request deadline exceeded")
			os.Exit(1)
		default:
			fatal(err)
		}
		fmt.Printf("admitted after %d rejection(s); %d suppliers:", report.Rejections, len(report.Suppliers))
		for _, s := range report.Suppliers {
			fmt.Printf(" %s(%v)", s.ID, s.Class)
		}
		fmt.Println()
		fmt.Printf("received %d bytes in %v\n", report.Bytes, report.Duration.Round(time.Millisecond))
		fmt.Printf("buffering delay: theoretical %v (n*dt), measured %v; playback %s\n",
			report.TheoreticalDelay, report.MeasuredDelay.Round(time.Millisecond), playbackStatus(report))
		fmt.Println("now supplying")
	}

	<-ctx.Done()
	fmt.Println("p2pnode: shutting down")
}

func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func playbackStatus(r *p2pstream.SessionReport) string {
	if r.Report.Continuous() {
		return "continuous (no stalls)"
	}
	return fmt.Sprintf("%d stalls", r.Report.Stalls)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "p2pnode: %v\n", err)
	os.Exit(1)
}
