// Command p2pscen runs cataloged cluster scenarios — declarative
// RFC 8867-style network/churn stresses of the live overlay — on the
// deterministic virtual substrate, prints each run's summary and invariant
// verdict, and optionally emits the sampled series as CSV.
//
// Examples:
//
//	p2pscen -list
//	p2pscen flash-crowd churn-storm
//	p2pscen -all
//	p2pscen -csv flash-crowd.csv -seed 7 flash-crowd
//	p2pscen -backend chord flash-crowd      (re-run any scenario on chord discovery)
//	p2pscen -shards 3 flash-crowd           (re-run any scenario on a 3-shard directory)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p2pstream/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list the scenario catalog and exit")
	all := flag.Bool("all", false, "run every cataloged scenario")
	csvPath := flag.String("csv", "", "write the (last) run's series to this CSV file")
	seed := flag.Int64("seed", 0, "override the scenario's random seed (0 keeps it)")
	backend := flag.String("backend", "", "override the discovery backend for named runs: directory or chord (empty keeps each scenario's own)")
	shards := flag.Int("shards", -1, "override DirectoryShards for named runs (-1 keeps each scenario's own; ignored under chord)")
	flag.Parse()

	if *list {
		for _, spec := range scenario.Catalog() {
			fmt.Printf("%-22s [%s] %s\n", spec.Name, spec.Discovery, spec.Stresses)
		}
		// The population-scale families: runnable by name, excluded from
		// -all (the 100k crowd and the 1k chord ring take minutes, not
		// seconds).
		for _, spec := range scenario.ScaleCatalog() {
			fmt.Printf("%-22s [%s] %s\n", spec.Name, spec.Discovery, spec.Stresses)
		}
		for _, spec := range scenario.ChordScaleCatalog() {
			fmt.Printf("%-22s [%s] %s\n", spec.Name, spec.Discovery, spec.Stresses)
		}
		return
	}
	names := flag.Args()
	if *all {
		if len(names) > 0 {
			fatal(fmt.Errorf("-all runs the whole catalog; drop the named scenarios %v", names))
		}
		for _, spec := range scenario.Catalog() {
			names = append(names, spec.Name)
		}
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no scenario named; try -list, -all, or: p2pscen <name>..."))
	}

	failed := 0
	var last *scenario.Report
	for _, name := range names {
		spec, ok := scenario.ByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown scenario %q; -list shows the catalog", name))
		}
		if *seed != 0 {
			spec.Seed = *seed
		}
		if *backend != "" {
			b, err := scenario.ParseBackend(*backend)
			if err != nil {
				fatal(err)
			}
			spec.Discovery = b
			if b != scenario.BackendChord {
				// A directory-backed run cannot also crash the directory;
				// scrub decoy-kill events a chord spec may carry. (Shard
				// churn of a natively sharded spec stays — the shards run.)
				spec.KeepDirectory = false
				kept := spec.Churn[:0]
				for _, ev := range spec.Churn {
					if ev.Node != scenario.DirectoryHost ||
						scenario.ShardHostIndex(ev.Node, spec.DirectoryShards) >= 0 {
						kept = append(kept, ev)
					}
				}
				spec.Churn = kept
			} else {
				// A chord run has no registry shards to crash or rebirth;
				// scrub the shard-targeted churn a sharded spec carries.
				kept := spec.Churn[:0]
				for _, ev := range spec.Churn {
					if scenario.ShardHostIndex(ev.Node, spec.DirectoryShards) < 0 {
						kept = append(kept, ev)
					}
				}
				spec.Churn = kept
				spec.DirectoryShards = 0
				// No registry means no resharding controller either: drop an
				// elastic spec's autoscaler and the expectations that only
				// its epoch flips can satisfy.
				spec.Autoscale = nil
				spec.Expect.MinEpochFlips = 0
				spec.Expect.MaxFlipConvergence = 0
				spec.Expect.NoLostRegistrations = false
				spec.Expect.NoFailedShardLegs = false
			}
		}
		if *shards >= 0 {
			// Shrinking the shard set may strand shard-targeted churn;
			// scrub events naming shard hosts the new count no longer runs.
			kept := spec.Churn[:0]
			for _, ev := range spec.Churn {
				if idx := scenario.ShardHostIndex(ev.Node, spec.DirectoryShards); idx >= 0 && (*shards < 2 || idx >= *shards) {
					continue
				}
				kept = append(kept, ev)
			}
			spec.Churn = kept
			spec.DirectoryShards = *shards
		}
		start := time.Now()
		report, err := scenario.Run(spec)
		if err != nil {
			fatal(err)
		}
		last = report
		fmt.Printf("%s (wall %v)\n", report.Summary(), time.Since(start).Round(time.Millisecond))
		if err := report.Check(); err != nil {
			fmt.Printf("  INVARIANT VIOLATION: %v\n", err)
			failed++
		} else {
			fmt.Println("  invariants ok")
		}
	}
	if *csvPath != "" && last != nil {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := last.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p2pscen:", err)
	os.Exit(2)
}
