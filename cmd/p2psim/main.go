// Command p2psim runs one whole-system simulation of the peer-to-peer
// streaming system and prints its headline metrics, optionally emitting the
// sampled series as CSV.
//
// Example (the paper's Figure 4(a) DAC curve):
//
//	p2psim -policy dac -pattern 2 -requesters 50000 -seeds 100
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p2pstream/internal/arrival"
	"p2pstream/internal/dac"
	"p2pstream/internal/metrics"
	"p2pstream/internal/system"
)

func main() {
	cfg := system.DefaultConfig()
	policy := flag.String("policy", "dac", "admission policy: dac or ndac")
	pattern := flag.Int("pattern", 2, "arrival pattern 1-4")
	flag.IntVar(&cfg.NumRequesters, "requesters", cfg.NumRequesters, "number of requesting peers")
	flag.IntVar(&cfg.NumSeeds, "seeds", cfg.NumSeeds, "number of seed supplying peers")
	flag.IntVar(&cfg.M, "m", cfg.M, "candidates probed per request (M)")
	flag.DurationVar(&cfg.TOut, "tout", cfg.TOut, "idle elevation timeout (T_out)")
	flag.DurationVar(&cfg.Backoff.Base, "tbkf", cfg.Backoff.Base, "base backoff (T_bkf)")
	flag.IntVar(&cfg.Backoff.Factor, "ebkf", cfg.Backoff.Factor, "backoff exponent (E_bkf)")
	flag.DurationVar(&cfg.SessionDuration, "session", cfg.SessionDuration, "streaming session length (show time)")
	flag.DurationVar(&cfg.ArrivalWindow, "window", cfg.ArrivalWindow, "first-request arrival window")
	flag.DurationVar(&cfg.Horizon, "horizon", cfg.Horizon, "simulated time")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	csvPath := flag.String("csv", "", "write capacity/admission/delay series to this CSV file")
	chart := flag.Bool("chart", true, "print an ASCII capacity chart")
	flag.Parse()

	switch *policy {
	case "dac":
		cfg.Policy = dac.DAC
	case "ndac":
		cfg.Policy = dac.NDAC
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	cfg.Pattern = arrival.Pattern(*pattern)

	start := time.Now()
	res, err := system.Run(cfg)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("policy=%v pattern=%v peers=%d+%d horizon=%v (wall %v, %d events)\n",
		cfg.Policy, cfg.Pattern, cfg.NumSeeds, cfg.NumRequesters, cfg.Horizon, wall.Round(time.Millisecond), res.Events)
	last, _ := res.Capacity.Last()
	fmt.Printf("capacity: final %.0f of max %d (%.1f%%)\n", last, res.MaxCapacity, 100*last/float64(res.MaxCapacity))
	fmt.Printf("requests=%d probes=%d reminders=%d\n\n", res.TotalRequests, res.TotalProbes, res.TotalReminders)
	fmt.Printf("%-8s %-10s %-10s %-12s %-10s %-10s %-12s\n",
		"class", "arrived", "admitted", "admission%", "avg rej", "delay*dt", "avg wait")
	for c := 0; c < len(res.Arrived); c++ {
		rate, _ := res.AdmissionRate[c].Last()
		fmt.Printf("%-8d %-10d %-10d %-12.1f %-10.2f %-10.2f %-12v\n",
			c+1, res.Arrived[c], res.Admitted[c], rate, res.AvgRejections[c], res.AvgDelaySlots[c],
			res.AvgWait[c].Round(time.Minute))
	}

	if *chart {
		fmt.Println()
		fmt.Print(metrics.Chart("total system capacity", 64, 14, res.Capacity))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		series := append([]*metrics.Series{res.Capacity, res.OverallAdmissionRate}, res.AdmissionRate...)
		series = append(series, res.BufferingDelay...)
		if err := metrics.WriteCSV(f, series...); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "p2psim: %v\n", err)
	os.Exit(1)
}
