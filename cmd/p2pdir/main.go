// Command p2pdir runs the directory service of the live streaming overlay
// (the Napster-style lookup service of Section 4.2, footnote 4).
//
// A single server:
//
//	p2pdir -listen 127.0.0.1:7000
//
// A sharded registry — one process per shard in production, or all shards
// in one process for local work — splits the registry by consistent
// hashing; shard i listens on the base port + i, and peers route with
// p2pnode's -dir-addrs:
//
//	p2pdir -listen 127.0.0.1:7000 -shards 3
//	p2pnode -id peer1 -class 2 -dir-addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"p2pstream/internal/directory"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "address to listen on (with -shards, the base: shard i adds i to the port)")
	shards := flag.Int("shards", 1, "number of registry shards to serve from this process")
	seed := flag.Int64("seed", 1, "random seed for candidate sampling (shard i adds i)")
	flag.Parse()

	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "p2pdir: -shards %d, want >= 1\n", *shards)
		os.Exit(2)
	}
	// Only a multi-shard run does port arithmetic; a single server takes
	// -listen verbatim (service names and port 0 keep working).
	var host string
	var port int
	if *shards > 1 {
		h, portStr, err := net.SplitHostPort(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2pdir: bad -listen %q: %v\n", *listen, err)
			os.Exit(2)
		}
		p, err := strconv.Atoi(portStr)
		if err != nil || p == 0 {
			fmt.Fprintf(os.Stderr, "p2pdir: -shards needs an explicit numeric base port, got %q\n", portStr)
			os.Exit(2)
		}
		host, port = h, p
	}

	errc := make(chan error, *shards)
	addrs := make([]string, *shards)
	for i := 0; i < *shards; i++ {
		i := i
		srv := directory.NewServer(*seed + int64(i))
		addr := *listen
		if *shards > 1 {
			addr = net.JoinHostPort(host, strconv.Itoa(port+i))
		}
		ready := make(chan string, 1)
		go func() { errc <- srv.ListenAndServe(addr, ready) }()
		select {
		case a := <-ready:
			addrs[i] = a
		case err := <-errc:
			fmt.Fprintf(os.Stderr, "p2pdir: shard %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("p2pdir: shard %d serving on %s\n", i, addrs[i])
	}
	if *shards > 1 {
		fmt.Printf("p2pdir: peers route with -dir-addrs %s\n", strings.Join(addrs, ","))
	}
	if err := <-errc; err != nil {
		fmt.Fprintf(os.Stderr, "p2pdir: %v\n", err)
		os.Exit(1)
	}
}
