// Command p2pdir runs the directory service of the live streaming overlay
// (the Napster-style lookup service of Section 4.2, footnote 4).
//
// A single server:
//
//	p2pdir -listen 127.0.0.1:7000
//
// A sharded registry — one process per shard in production, or all shards
// in one process for local work — splits the registry by consistent
// hashing; shard i listens on the base port + i, and peers route with
// p2pnode's -dir-addrs:
//
//	p2pdir -listen 127.0.0.1:7000 -shards 3
//	p2pnode -id peer1 -class 2 -dir-addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// An elastic registry adds an in-process autoscaling controller
// (internal/reshard): sustained lookup load above the high-water mark
// spawns a shard on the next port and announces a new resharding epoch,
// sustained underload drains the coldest spawned shard back out. Peers
// follow the flips live with p2pnode's -dir-epochs:
//
//	p2pdir -listen 127.0.0.1:7000 -autoscale
//	p2pnode -id peer1 -class 2 -dir-addrs 127.0.0.1:7000 -dir-epochs
//
// The initial -shards servers are the stable bootstrap set and are never
// drained; the controller scales between that floor and -autoscale-max.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"p2pstream/internal/directory"
	"p2pstream/internal/observe"
	"p2pstream/internal/reshard"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "address to listen on (with -shards or -autoscale, the base: shard i adds i to the port)")
	shards := flag.Int("shards", 1, "number of registry shards to serve from this process")
	seed := flag.Int64("seed", 1, "random seed for candidate sampling (shard i adds i)")
	autoscale := flag.Bool("autoscale", false, "run the elastic registry: an autoscaling controller grows and drains the shard set under lookup load (peers follow with p2pnode -dir-epochs)")
	asInterval := flag.Duration("autoscale-interval", 2*time.Second, "autoscaler load sampling period")
	asHigh := flag.Float64("autoscale-high", 50, "mean lookups per shard per interval that, sustained, add a shard")
	asLow := flag.Float64("autoscale-low", 5, "mean lookups per shard per interval that, sustained, drain the coldest spawned shard")
	asMax := flag.Int("autoscale-max", 8, "shard count ceiling under -autoscale")
	flag.Parse()

	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "p2pdir: -shards %d, want >= 1\n", *shards)
		os.Exit(2)
	}
	// Shard i listens on the base port + i, so any mode that can run more
	// than one shard needs an explicit numeric base port; a plain single
	// server takes -listen verbatim (service names and port 0 keep
	// working).
	var host string
	var port int
	if *shards > 1 || *autoscale {
		h, portStr, err := net.SplitHostPort(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2pdir: bad -listen %q: %v\n", *listen, err)
			os.Exit(2)
		}
		p, err := strconv.Atoi(portStr)
		if err != nil || p == 0 {
			fmt.Fprintf(os.Stderr, "p2pdir: -shards/-autoscale need an explicit numeric base port, got %q\n", portStr)
			os.Exit(2)
		}
		host, port = h, p
	}

	errc := make(chan error, *shards)
	addrs := make([]string, *shards)
	servers := make([]*directory.Server, *shards)
	for i := 0; i < *shards; i++ {
		srv := directory.NewServer(*seed + int64(i))
		addr := *listen
		if *shards > 1 || *autoscale {
			addr = net.JoinHostPort(host, strconv.Itoa(port+i))
		}
		ready := make(chan string, 1)
		go func() { errc <- srv.ListenAndServe(addr, ready) }()
		select {
		case a := <-ready:
			addrs[i] = a
		case err := <-errc:
			fmt.Fprintf(os.Stderr, "p2pdir: shard %d: %v\n", i, err)
			os.Exit(1)
		}
		servers[i] = srv
		fmt.Printf("p2pdir: shard %d serving on %s\n", i, addrs[i])
	}
	if *shards > 1 {
		fmt.Printf("p2pdir: peers route with -dir-addrs %s\n", strings.Join(addrs, ","))
	}

	if *autoscale {
		if *asMax < *shards {
			fmt.Fprintf(os.Stderr, "p2pdir: -autoscale-max %d below -shards %d\n", *asMax, *shards)
			os.Exit(2)
		}
		// Spawned shards come and go; a retired one's Serve returns a
		// closed-listener error that must not take the process down.
		var retireMu sync.Mutex
		retired := make(map[*directory.Server]bool)
		members := make([]reshard.Member, *shards)
		for i := range members {
			members[i] = reshard.Member{Name: fmt.Sprintf("shard-%d", i), Addr: addrs[i], Server: servers[i]}
		}
		ctrl, err := reshard.New(reshard.Config{
			Interval:  *asInterval,
			HighWater: *asHigh,
			LowWater:  *asLow,
			MinShards: *shards,
			// The advertised -dir-addrs bootstrap set must stay live: a
			// booting peer dials those addresses, so the initial servers
			// are pinned and only spawned shards ever drain. (Their
			// ListenAndServe errors stay fatal for the same reason — a
			// dead bootstrap shard is a process failure, not churn.)
			Pinned:    *shards,
			MaxShards: *asMax,
			Members:   members,
			Spawn: func(seq int) (reshard.Member, error) {
				srv := directory.NewServer(*seed + int64(seq))
				addr := net.JoinHostPort(host, strconv.Itoa(port+seq))
				ready := make(chan string, 1)
				serr := make(chan error, 1)
				go func() { serr <- srv.ListenAndServe(addr, ready) }()
				select {
				case a := <-ready:
					go func() {
						err := <-serr
						retireMu.Lock()
						gone := retired[srv]
						retireMu.Unlock()
						if err != nil && !gone {
							fmt.Fprintf(os.Stderr, "p2pdir: spawned shard on %s: %v\n", a, err)
						}
					}()
					return reshard.Member{Name: fmt.Sprintf("shard-%d", seq), Addr: a, Server: srv}, nil
				case err := <-serr:
					return reshard.Member{}, err
				}
			},
			Retire: func(m reshard.Member) {
				retireMu.Lock()
				retired[m.Server] = true
				retireMu.Unlock()
				m.Server.Close()
				fmt.Printf("p2pdir: retired %s (%s)\n", m.Name, m.Addr)
			},
			Observer: observe.Func(func(ev observe.Event) {
				switch ev.Type {
				case observe.EpochFlip:
					fmt.Printf("p2pdir: epoch %d: %d shards\n", ev.Epoch, ev.Count)
				case observe.ShardAdded:
					fmt.Printf("p2pdir: epoch %d: added %s\n", ev.Epoch, ev.Object)
				case observe.ShardDrained:
					fmt.Printf("p2pdir: epoch %d: drained %s (retires after grace)\n", ev.Epoch, ev.Object)
				}
			}),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2pdir: %v\n", err)
			os.Exit(2)
		}
		defer ctrl.Close()
		ctrl.Start()
		fmt.Printf("p2pdir: autoscaling %d..%d shards (high %.3g, low %.3g lookups/shard per %v); peers follow with -dir-addrs %s -dir-epochs\n",
			*shards, *asMax, *asHigh, *asLow, *asInterval, strings.Join(addrs, ","))
	}

	if err := <-errc; err != nil {
		fmt.Fprintf(os.Stderr, "p2pdir: %v\n", err)
		os.Exit(1)
	}
}
