// Command p2pdir runs the directory server of the live streaming overlay
// (the Napster-style lookup service of Section 4.2, footnote 4).
//
//	p2pdir -listen 127.0.0.1:7000
package main

import (
	"flag"
	"fmt"
	"os"

	"p2pstream/internal/directory"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "address to listen on")
	seed := flag.Int64("seed", 1, "random seed for candidate sampling")
	flag.Parse()

	srv := directory.NewServer(*seed)
	ready := make(chan string, 1)
	go func() {
		fmt.Printf("p2pdir: serving on %s\n", <-ready)
	}()
	if err := srv.ListenAndServe(*listen, ready); err != nil {
		fmt.Fprintf(os.Stderr, "p2pdir: %v\n", err)
		os.Exit(1)
	}
}
