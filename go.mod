module p2pstream

go 1.24
