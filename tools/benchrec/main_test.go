package main

import (
	"strings"
	"testing"
)

// TestCompareGate is the negative test of the CI regression gate: a
// measurement more than 10% slower — or allocating at all on a zero-alloc
// baseline — must fail the comparison, and anything within tolerance (or
// un-gated) must pass.
func TestCompareGate(t *testing.T) {
	baseline := map[string]Bench{
		"BenchmarkVnetChunkDelivery":   {NsPerOp: 100, AllocsPerOp: 0, Gated: true},
		"BenchmarkPacedChunkDelivery":  {NsPerOp: 110, AllocsPerOp: 0, Gated: true},
		"BenchmarkVnetConcurrentHosts": {NsPerOp: 200, AllocsPerOp: 0, Gated: true},
		"BenchmarkMegacrowd10k":        {NsPerOp: 9e9, AllocsPerOp: 5e7, Gated: false},
	}

	cases := []struct {
		name     string
		measured map[string]Bench
		wantFail []string // substrings that must appear in the regressions
	}{
		{
			name: "within tolerance passes",
			measured: map[string]Bench{
				"BenchmarkVnetChunkDelivery":   {NsPerOp: 109, AllocsPerOp: 0},
				"BenchmarkPacedChunkDelivery":  {NsPerOp: 120, AllocsPerOp: 0},
				"BenchmarkVnetConcurrentHosts": {NsPerOp: 219, AllocsPerOp: 0},
				"BenchmarkMegacrowd10k":        {NsPerOp: 9.5e9, AllocsPerOp: 6e7},
			},
		},
		{
			name: "ns/op regression fails",
			measured: map[string]Bench{
				"BenchmarkVnetChunkDelivery":   {NsPerOp: 120, AllocsPerOp: 0},
				"BenchmarkPacedChunkDelivery":  {NsPerOp: 110, AllocsPerOp: 0},
				"BenchmarkVnetConcurrentHosts": {NsPerOp: 200, AllocsPerOp: 0},
			},
			wantFail: []string{"BenchmarkVnetChunkDelivery", "ns/op"},
		},
		{
			name: "any alloc on a zero-alloc baseline fails",
			measured: map[string]Bench{
				"BenchmarkVnetChunkDelivery":   {NsPerOp: 100, AllocsPerOp: 1},
				"BenchmarkPacedChunkDelivery":  {NsPerOp: 110, AllocsPerOp: 0},
				"BenchmarkVnetConcurrentHosts": {NsPerOp: 200, AllocsPerOp: 0},
			},
			wantFail: []string{"BenchmarkVnetChunkDelivery", "allocs/op"},
		},
		{
			name: "missing gated benchmark fails",
			measured: map[string]Bench{
				"BenchmarkPacedChunkDelivery":  {NsPerOp: 110, AllocsPerOp: 0},
				"BenchmarkVnetConcurrentHosts": {NsPerOp: 200, AllocsPerOp: 0},
			},
			wantFail: []string{"BenchmarkVnetChunkDelivery", "missing"},
		},
		{
			name: "un-gated macro benchmark may regress freely",
			measured: map[string]Bench{
				"BenchmarkVnetChunkDelivery":   {NsPerOp: 100, AllocsPerOp: 0},
				"BenchmarkPacedChunkDelivery":  {NsPerOp: 110, AllocsPerOp: 0},
				"BenchmarkVnetConcurrentHosts": {NsPerOp: 200, AllocsPerOp: 0},
				"BenchmarkMegacrowd10k":        {NsPerOp: 9e12, AllocsPerOp: 5e9},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := compare(baseline, tc.measured, 0.10)
			if len(tc.wantFail) == 0 {
				if len(got) != 0 {
					t.Fatalf("compare flagged %v, want pass", got)
				}
				return
			}
			if len(got) == 0 {
				t.Fatal("compare passed, want regression failure")
			}
			joined := strings.Join(got, "\n")
			for _, want := range tc.wantFail {
				if !strings.Contains(joined, want) {
					t.Errorf("regressions %q missing %q", joined, want)
				}
			}
		})
	}
}

// TestParseBenchOutput covers the `go test -bench -benchmem` line format,
// -cpu suffixes included.
func TestParseBenchOutput(t *testing.T) {
	out := `
goos: linux
BenchmarkVnetChunkDelivery-8   	 9126298	       105.6 ns/op	2421.92 MB/s	       0 B/op	       0 allocs/op
BenchmarkVnetConcurrentHosts-8 	 6500000	       180.5 ns/op	1417.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkMegacrowd10k-8        	       1	9034000000 ns/op	52000000 B/op	  400000 allocs/op
PASS
ok  	p2pstream	12.3s
`
	res := parseBenchOutput(out)
	if len(res) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(res), res)
	}
	cd := res["BenchmarkVnetChunkDelivery"]
	if cd.NsPerOp != 105.6 || cd.AllocsPerOp != 0 {
		t.Errorf("chunk delivery = %+v, want 105.6 ns/op, 0 allocs/op", cd)
	}
	mc := res["BenchmarkMegacrowd10k"]
	if mc.NsPerOp != 9.034e9 || mc.AllocsPerOp != 400000 {
		t.Errorf("megacrowd = %+v", mc)
	}
}

// TestBestOf: best-of-3 sampling keeps the per-benchmark floor of every
// metric independently, and drops a benchmark that any sample missed.
func TestBestOf(t *testing.T) {
	samples := []map[string]Bench{
		{
			"BenchmarkVnetChunkDelivery":  {NsPerOp: 130, AllocsPerOp: 2},
			"BenchmarkPacedChunkDelivery": {NsPerOp: 150, AllocsPerOp: 0},
			"BenchmarkFlaky":              {NsPerOp: 50, AllocsPerOp: 0},
		},
		{
			"BenchmarkVnetChunkDelivery":  {NsPerOp: 105, AllocsPerOp: 3},
			"BenchmarkPacedChunkDelivery": {NsPerOp: 140, AllocsPerOp: 1},
		},
		{
			"BenchmarkVnetChunkDelivery":  {NsPerOp: 118, AllocsPerOp: 0},
			"BenchmarkPacedChunkDelivery": {NsPerOp: 160, AllocsPerOp: 0},
			"BenchmarkFlaky":              {NsPerOp: 45, AllocsPerOp: 0},
		},
	}
	got := bestOf(samples)
	if len(got) != 2 {
		t.Fatalf("bestOf kept %d benchmarks, want 2 (flaky one dropped): %+v", len(got), got)
	}
	// Minima are taken per metric, not per sample: 105 ns/op comes from
	// sample 2, 0 allocs/op from sample 3.
	if cd := got["BenchmarkVnetChunkDelivery"]; cd.NsPerOp != 105 || cd.AllocsPerOp != 0 {
		t.Errorf("chunk delivery best = %+v, want 105 ns/op, 0 allocs/op", cd)
	}
	if pd := got["BenchmarkPacedChunkDelivery"]; pd.NsPerOp != 140 || pd.AllocsPerOp != 0 {
		t.Errorf("paced delivery best = %+v, want 140 ns/op, 0 allocs/op", pd)
	}
	if bestOf(nil) != nil {
		t.Error("bestOf(nil) must be nil")
	}
}
