// Command benchrec records and gates the virtual-substrate benchmark
// trajectory. It runs the vnet benchmarks (BenchmarkVnetChunkDelivery,
// BenchmarkPacedChunkDelivery, BenchmarkVnetConcurrentHosts,
// BenchmarkLibraryLookup, BenchmarkMegacrowd10k, BenchmarkChordLookup1k,
// BenchmarkEpochFlip — see bench_test.go) and either:
//
//	-record   appends the measured point to BENCH_vnet.json (the
//	          trajectory: one point per recorded optimization state), or
//	-check    compares the measurement against the newest trajectory
//	          point and exits non-zero on a >10% ns/op or allocs/op
//	          regression of any gated benchmark — the CI regression gate.
//
// The micro-benchmarks run on a manually driven clock and measure pure
// CPU, so they gate tightly; the 10k megacrowd, the 1,024-member chord
// lookup and the 1,000-registration epoch flip are wall-clock (quiescence
// waits and RPC round trips included) and are recorded un-gated. Each
// micro measurement is the
// best of three samples — min ns/op and min allocs/op per benchmark — so
// a scheduler hiccup in one sample neither records an inflated baseline
// nor fails the gate spuriously.
//
// Run from the repository root:
//
//	go run ./tools/benchrec -record -label "describe the change"
//	go run ./tools/benchrec -check
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark's measurement at one trajectory point.
type Bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Gated marks the benchmark as regression-gated: -check fails when it
	// regresses beyond tolerance against the baseline. Wall-clock-bound
	// macro benchmarks record un-gated.
	Gated bool `json:"gated"`
}

// Point is one entry of the recorded trajectory.
type Point struct {
	Label   string           `json:"label"`
	Date    string           `json:"date,omitempty"`
	Benches map[string]Bench `json:"benches"`
}

// Trajectory is the BENCH_vnet.json layout: oldest point first; the
// newest point is the regression baseline.
type Trajectory struct {
	Points []Point `json:"trajectory"`
}

const (
	microBenches = "^(BenchmarkVnetChunkDelivery|BenchmarkPacedChunkDelivery|BenchmarkVnetConcurrentHosts|BenchmarkLibraryLookup)$"
	macroBenches = "^(BenchmarkMegacrowd10k|BenchmarkChordLookup1k|BenchmarkEpochFlip)$"

	// microSamples is the best-of count for the gated micro-benchmarks.
	microSamples = 3
)

func main() {
	var (
		record    = flag.Bool("record", false, "run the benchmarks and append a trajectory point")
		check     = flag.Bool("check", false, "run the benchmarks and gate against the newest trajectory point")
		file      = flag.String("file", "BENCH_vnet.json", "trajectory file")
		label     = flag.String("label", "", "label for -record (required with -record)")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional regression for -check")
		skipMacro = flag.Bool("skip-macro", false, "skip the (slow, un-gated) macro benchmark")
	)
	flag.Parse()
	if *record == *check {
		fmt.Fprintln(os.Stderr, "benchrec: exactly one of -record or -check is required")
		os.Exit(2)
	}
	if *record && *label == "" {
		fmt.Fprintln(os.Stderr, "benchrec: -record requires -label")
		os.Exit(2)
	}

	measured, err := runBenches(*skipMacro)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrec: %v\n", err)
		os.Exit(1)
	}
	for name, b := range measured {
		fmt.Printf("%-32s %12.1f ns/op %10.0f allocs/op (gated=%v)\n", name, b.NsPerOp, b.AllocsPerOp, b.Gated)
	}

	traj, err := load(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrec: %v\n", err)
		os.Exit(1)
	}

	if *record {
		traj.Points = append(traj.Points, Point{
			Label:   *label,
			Date:    time.Now().Format("2006-01-02"),
			Benches: measured,
		})
		if err := save(*file, traj); err != nil {
			fmt.Fprintf(os.Stderr, "benchrec: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded point %d to %s\n", len(traj.Points), *file)
		return
	}

	if len(traj.Points) == 0 {
		fmt.Fprintf(os.Stderr, "benchrec: %s has no trajectory points to gate against\n", *file)
		os.Exit(1)
	}
	baseline := traj.Points[len(traj.Points)-1]
	regressions := compare(baseline.Benches, measured, *tolerance)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchrec: regression against %q:\n", baseline.Label)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("no regression against %q (tolerance %.0f%%)\n", baseline.Label, *tolerance*100)
}

// compare gates measured benchmarks against the baseline: every gated
// baseline benchmark must be present and within tolerance on both ns/op
// and allocs/op. A zero-alloc baseline tolerates zero allocations — any
// alloc on a 0 allocs/op benchmark is a regression, fractional tolerance
// notwithstanding.
func compare(baseline, measured map[string]Bench, tolerance float64) []string {
	var out []string
	for name, base := range baseline {
		if !base.Gated {
			continue
		}
		got, ok := measured[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: gated benchmark missing from measurement", name))
			continue
		}
		if got.NsPerOp > base.NsPerOp*(1+tolerance) {
			out = append(out, fmt.Sprintf("%s: %.1f ns/op, baseline %.1f (+%.0f%% > %.0f%%)",
				name, got.NsPerOp, base.NsPerOp, (got.NsPerOp/base.NsPerOp-1)*100, tolerance*100))
		}
		if got.AllocsPerOp > base.AllocsPerOp*(1+tolerance) {
			out = append(out, fmt.Sprintf("%s: %.0f allocs/op, baseline %.0f",
				name, got.AllocsPerOp, base.AllocsPerOp))
		}
	}
	return out
}

// runBenches runs the vnet benchmarks and parses their measurements. The
// micro-benchmarks use a 1s benchtime for stable ns/op and are sampled
// three times, keeping the best (minimum) of each metric — both -record
// and -check see noise-floor numbers, not one unlucky sample. The macro
// benchmarks run a single iteration each (one op takes seconds).
func runBenches(skipMacro bool) (map[string]Bench, error) {
	out := make(map[string]Bench)
	var samples []map[string]Bench
	for i := 0; i < microSamples; i++ {
		micro, err := goBench(microBenches, "1s")
		if err != nil {
			return nil, err
		}
		samples = append(samples, micro)
	}
	for name, b := range bestOf(samples) {
		b.Gated = true
		out[name] = b
	}
	if !skipMacro {
		macro, err := goBench(macroBenches, "1x")
		if err != nil {
			return nil, err
		}
		for name, b := range macro {
			out[name] = b // wall-clock bound: recorded, not gated
		}
	}
	return out, nil
}

// bestOf folds repeated samples of the same benchmark set into one
// measurement per benchmark: the minimum ns/op and minimum allocs/op
// across samples. Minimum, not mean: these benchmarks measure pure CPU on
// a quiet machine, so the floor is the signal and everything above it is
// interference. A benchmark is kept only if every sample measured it.
func bestOf(samples []map[string]Bench) map[string]Bench {
	if len(samples) == 0 {
		return nil
	}
	out := make(map[string]Bench)
	for name, b := range samples[0] {
		best, ok := b, true
		for _, s := range samples[1:] {
			got, present := s[name]
			if !present {
				ok = false
				break
			}
			if got.NsPerOp < best.NsPerOp {
				best.NsPerOp = got.NsPerOp
			}
			if got.AllocsPerOp < best.AllocsPerOp {
				best.AllocsPerOp = got.AllocsPerOp
			}
		}
		if ok {
			out[name] = best
		}
	}
	return out
}

func goBench(pattern, benchtime string) (map[string]Bench, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", benchtime, "-benchmem", ".")
	raw, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench %s: %v\n%s", pattern, err, raw)
	}
	res := parseBenchOutput(string(raw))
	if len(res) == 0 {
		return nil, fmt.Errorf("go test -bench %s matched no benchmarks:\n%s", pattern, raw)
	}
	return res, nil
}

// parseBenchOutput extracts ns/op and allocs/op from `go test -bench`
// output lines (`BenchmarkName-8  N  12.3 ns/op  ...  4 allocs/op`). The
// -cpu suffix is stripped so names match across machines.
func parseBenchOutput(out string) map[string]Bench {
	res := make(map[string]Bench)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		var b Bench
		seen := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp = v
				seen = true
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if seen {
			res[name] = b
		}
	}
	return res
}

func load(path string) (*Trajectory, error) {
	t := new(Trajectory)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return t, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

func save(path string, t *Trajectory) error {
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
