// Command ctxcheck enforces the context-first rule of the overlay's
// request/discovery path: every exported function, method or interface
// method with one of the path's verb names must take a context.Context as
// its first parameter. It is the CI tripwire that keeps the API redesign
// from regressing — a new Discovery backend (or a new facade method)
// whose Register/Candidates/Request forgets the context fails the build,
// not the review.
//
// Run from the repository root:
//
//	go run ./tools/ctxcheck
//
// Non-test files of the listed packages are parsed with go/ast (no build
// or type-check needed); violations are printed one per line and the exit
// status is 1 when any exist.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// packages in the request/discovery path, relative to the repo root.
var packages = []string{
	".",
	"internal/node",
	"internal/directory",
	"internal/chordnet",
	"internal/scenario",
	"internal/transport",
}

// verbs are the request/discovery method names that must be context-first
// wherever they are exported: on concrete types, as free functions, and in
// interface declarations.
var verbs = map[string]bool{
	"Request":              true,
	"RequestUntilAdmitted": true,
	"RequestUntilHeld":     true,
	"Register":             true,
	"Unregister":           true,
	"Candidates":           true,
	"Lookup":               true,
	"LookupKey":            true,
	"Call":                 true,
	"Seed":                 true, // Overlay.Seed starts + registers a peer
	"Requester":            true, // Overlay.Requester likewise
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	fset := token.NewFileSet()
	for _, pkg := range packages {
		dir := filepath.Join(root, pkg)
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctxcheck: parsing %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, p := range pkgs {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch d := n.(type) {
					case *ast.FuncDecl:
						if d.Name.IsExported() && verbs[d.Name.Name] && !ctxFirst(d.Type) {
							violations = append(violations, describe(fset, d.Pos(), receiver(d), d.Name.Name))
						}
					case *ast.InterfaceType:
						for _, m := range d.Methods.List {
							ft, ok := m.Type.(*ast.FuncType)
							if !ok || len(m.Names) == 0 {
								continue
							}
							name := m.Names[0]
							if name.IsExported() && verbs[name.Name] && !ctxFirst(ft) {
								violations = append(violations, describe(fset, name.Pos(), "interface", name.Name))
							}
						}
					}
					return true
				})
			}
		}
	}
	if len(violations) > 0 {
		fmt.Fprintln(os.Stderr, "ctxcheck: exported request/discovery methods missing a context.Context first parameter:")
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(1)
	}
	fmt.Println("ctxcheck: request/discovery path is context-first")
}

// ctxFirst reports whether the function type's first parameter is
// context.Context (spelled as the context package's qualified name).
func ctxFirst(ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	sel, ok := ft.Params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

// receiver renders a method's receiver type name, or "func" for plain
// functions.
func receiver(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func"
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "recv"
}

func describe(fset *token.FileSet, pos token.Pos, recv, name string) string {
	return fmt.Sprintf("%s: %s.%s", fset.Position(pos), recv, name)
}
