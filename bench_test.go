// Benchmarks regenerating every table and figure of the paper (E1-E10 in
// DESIGN.md), plus micro-benchmarks of the underlying mechanisms. The
// simulation-backed benchmarks run a reduced workload per iteration so
// `go test -bench=.` completes in minutes; cmd/p2pbench runs the same
// experiments at the paper's full 50,100-peer scale.
package p2pstream_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"p2pstream/internal/arrival"
	"p2pstream/internal/bandwidth"
	"p2pstream/internal/chord"
	"p2pstream/internal/chordnet"
	"p2pstream/internal/clock"
	"p2pstream/internal/core"
	"p2pstream/internal/dac"
	"p2pstream/internal/directory"
	"p2pstream/internal/experiments"
	"p2pstream/internal/lookup"
	"p2pstream/internal/media"
	"p2pstream/internal/netx"
	"p2pstream/internal/observe"
	"p2pstream/internal/pacing"
	"p2pstream/internal/scenario"
	"p2pstream/internal/system"
	"p2pstream/internal/transport"
)

// benchScale keeps one simulation around 50-100ms so every experiment
// benchmark finishes quickly while exercising the full mechanism.
var benchScale = experiments.Scale{
	Name:          "bench",
	Requesters:    1500,
	Seeds:         30,
	ArrivalWindow: 18 * time.Hour,
	Horizon:       36 * time.Hour,
	Seed:          1,
}

// benchExperiment runs one paper artifact per iteration with a fresh
// runner (no cross-iteration caching).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.NewRunner(benchScale).Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Text == "" {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkFig1Assignment regenerates Figure 1 (E1): the four assignment
// strategies on the paper's supplier mix plus the exhaustive optimum.
func BenchmarkFig1Assignment(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig3Capacity regenerates Figure 3 (E2): admission order versus
// capacity growth.
func BenchmarkFig3Capacity(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4CapacityAmplification regenerates Figure 4 (E3): capacity
// under DAC_p2p vs NDAC_p2p for Patterns 2 and 4 (four simulations).
func BenchmarkFig4CapacityAmplification(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5AdmissionRate regenerates Figure 5 (E4).
func BenchmarkFig5AdmissionRate(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6BufferingDelay regenerates Figure 6 (E5).
func BenchmarkFig6BufferingDelay(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable1Rejections regenerates Table 1 (E6).
func BenchmarkTable1Rejections(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig7Adaptivity regenerates Figure 7 (E7).
func BenchmarkFig7Adaptivity(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8aImpactM regenerates Figure 8(a) (E8): the M sweep.
func BenchmarkFig8aImpactM(b *testing.B) { benchExperiment(b, "fig8a") }

// BenchmarkFig8bImpactTout regenerates Figure 8(b) (E9): the T_out sweep.
func BenchmarkFig8bImpactTout(b *testing.B) { benchExperiment(b, "fig8b") }

// BenchmarkFig9ImpactBackoff regenerates Figure 9 (E10): the E_bkf sweep.
func BenchmarkFig9ImpactBackoff(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkSimulationFullDay measures one raw simulation (no report
// rendering): the cost backing every figure.
func BenchmarkSimulationFullDay(b *testing.B) {
	cfg := benchScale.Config(dac.DAC, arrival.Pattern2RampUpDown)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := system.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the core mechanisms ---------------------------

// BenchmarkOTSAssign measures OTS_p2p itself across session sizes.
func BenchmarkOTSAssign(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		suppliers := homogeneousMix(n)
		b.Run(fmt.Sprintf("suppliers=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := core.Assign(suppliers)
				if err != nil {
					b.Fatal(err)
				}
				if a.DelaySlots() != int64(len(suppliers)) {
					b.Fatal("Theorem 1 violated")
				}
			}
		})
	}
}

// homogeneousMix builds the smallest homogeneous supplier set of size
// >= n with an exact R0 sum: 2^k class-k peers.
func homogeneousMix(n int) []core.Supplier {
	// n = 2^k homogeneous class-k peers.
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	suppliers := make([]core.Supplier, 1<<uint(k))
	for i := range suppliers {
		suppliers[i] = core.Supplier{ID: fmt.Sprint(i), Class: bandwidth.Class(k)}
	}
	return suppliers
}

// BenchmarkAdmissionProbe measures the supplier-side probe path.
func BenchmarkAdmissionProbe(b *testing.B) {
	sup, err := dac.NewSupplier(2, 4, dac.DAC)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sup.HandleProbe(bandwidth.Class(1+i%4), rng.Float64())
	}
}

// BenchmarkDirectorySample measures candidate sampling from a 50,000-peer
// directory (the lookup on every admission attempt).
func BenchmarkDirectorySample(b *testing.B) {
	dir := lookup.NewDirectory[int]()
	for i := 0; i < 50000; i++ {
		if err := dir.Register(lookup.Entry[int]{ID: i, Class: bandwidth.Class(1 + i%4)}); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := dir.Sample(8, rng); len(got) != 8 {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkChordLookup measures decentralized candidate discovery on a
// 4,096-peer Chord ring.
func BenchmarkChordLookup(b *testing.B) {
	members := make([]chord.Member, 4096)
	for i := range members {
		members[i] = chord.Member{Name: fmt.Sprintf("peer-%d", i), Class: bandwidth.Class(1 + i%4)}
	}
	ring, err := chord.New(members)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ring.SampleCandidates("peer-0", 8, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- virtual-substrate (vnet) benchmarks --------------------------------
//
// These are the benchmarks tools/benchrec records into BENCH_vnet.json and
// the CI regression gate watches. They drive the virtual clock manually
// from the benchmark goroutine (no auto-advance driver), so they measure
// the pure CPU cost of the vnet hot path — scheduling, copying, delivery —
// with no wall-clock quiescence waits.

// vnetPair builds one connected host pair on a manually driven clock.
func vnetPair(b *testing.B, clk *clock.Virtual, v *netx.Virtual, src, dst string) (w, r net.Conn) {
	b.Helper()
	l, err := v.Host(dst).Listen(":0")
	if err != nil {
		b.Fatal(err)
	}
	w, err = v.Host(src).Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	clk.Advance(10 * time.Millisecond) // surface the acceptee
	r, err = l.Accept()
	if err != nil {
		b.Fatal(err)
	}
	return w, r
}

// BenchmarkVnetChunkDelivery measures one chunk end to end through a
// virtual link: write (copy + schedule), clock advance (delivery), read
// (copy out). One op is one 256-byte chunk; chunks move in batches of 64
// per advance, the shape a paced session produces under a coalescing
// clock. The steady-state target is 0 allocs/op.
func BenchmarkVnetChunkDelivery(b *testing.B) {
	clk := clock.NewVirtual()
	v := netx.NewVirtual(clk, 1)
	v.SetDefaultLink(netx.LinkConfig{Latency: 300 * time.Microsecond})
	w, r := vnetPair(b, clk, v, "req", "sup")
	defer w.Close()
	defer r.Close()

	const chunk = 256
	const batch = 64
	payload := make([]byte, chunk)
	buf := make([]byte, chunk*batch)
	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if rest := b.N - done; rest < n {
			n = rest
		}
		for j := 0; j < n; j++ {
			if _, err := w.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
		clk.Advance(time.Millisecond)
		for rest := n * chunk; rest > 0; {
			m, err := r.Read(buf)
			if err != nil {
				b.Fatal(err)
			}
			rest -= m
		}
		done += n
	}
}

// BenchmarkPacedChunkDelivery is BenchmarkVnetChunkDelivery with the
// data-plane pacer in the write path, the shape every adaptive media
// session now produces: each chunk spends pacer budget before it touches
// the wire. Rate and burst are sized so one 1ms advance refills exactly
// one batch of budget — the pacer never sleeps, so the benchmark stays a
// pure CPU measurement of the paced hot path. Target: 0 allocs/op, with
// the delta against BenchmarkVnetChunkDelivery being the pacer's cost.
func BenchmarkPacedChunkDelivery(b *testing.B) {
	clk := clock.NewVirtual()
	v := netx.NewVirtual(clk, 1)
	v.SetDefaultLink(netx.LinkConfig{Latency: 300 * time.Microsecond})
	w, r := vnetPair(b, clk, v, "req", "sup")
	defer w.Close()
	defer r.Close()

	const chunk = 256
	const batch = 64
	payload := make([]byte, chunk)
	buf := make([]byte, chunk*batch)
	pacer := pacing.New(clk, chunk*batch*1000, chunk*batch)
	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if rest := b.N - done; rest < n {
			n = rest
		}
		for j := 0; j < n; j++ {
			pacer.Pace(chunk)
			if _, err := w.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
		clk.Advance(time.Millisecond)
		for rest := n * chunk; rest > 0; {
			m, err := r.Read(buf)
			if err != nil {
				b.Fatal(err)
			}
			rest -= m
		}
		done += n
	}
}

// BenchmarkVnetConcurrentHosts measures the substrate under many-host
// contention: 32 connected pairs streaming concurrently, the pattern a
// flash crowd produces. One op is one chunk through one pair; every
// advance moves one 16-chunk batch per pair, written and drained by 32
// goroutines racing for the link/conn tables and the clock.
func BenchmarkVnetConcurrentHosts(b *testing.B) {
	const pairs = 32
	const chunk = 256
	const perRound = 16

	clk := clock.NewVirtual()
	v := netx.NewVirtual(clk, 1)
	v.SetDefaultLink(netx.LinkConfig{Latency: 300 * time.Microsecond})
	ws := make([]net.Conn, pairs)
	rs := make([]net.Conn, pairs)
	for i := 0; i < pairs; i++ {
		ws[i], rs[i] = vnetPair(b, clk, v, fmt.Sprintf("req%d", i), fmt.Sprintf("sup%d", i))
		defer ws[i].Close()
		defer rs[i].Close()
	}

	payload := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := perRound
		if rest := (b.N - done) / pairs; rest < n {
			n = rest
			if n == 0 {
				n = 1
			}
		}
		var wg sync.WaitGroup
		for i := 0; i < pairs; i++ {
			w := ws[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < n; j++ {
					w.Write(payload)
				}
			}()
		}
		wg.Wait()
		clk.Advance(time.Millisecond)
		for i := 0; i < pairs; i++ {
			r := rs[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, chunk)
				for rest := n * chunk; rest > 0; {
					m, err := r.Read(buf)
					if err != nil {
						return
					}
					rest -= m
				}
			}()
		}
		wg.Wait()
		done += n * pairs
	}
}

// BenchmarkMegacrowd10k runs the full 10k-requester flash crowd — 10,512
// live hosts on one virtual substrate — once per iteration, invariants
// checked. This is the macro point of the BENCH_vnet.json trajectory: its
// ns/op is wall-clock (quiescence waits included), so tools/benchrec
// records it without gating it, unlike the two micro-benchmarks above.
func BenchmarkMegacrowd10k(b *testing.B) {
	spec, ok := scenario.ByName("megacrowd-10k")
	if !ok {
		b.Fatal("megacrowd-10k missing from ScaleCatalog")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := scenario.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if got, want := rep.Served(), len(spec.Requesters); got != want {
			b.Fatalf("served %d of %d requesters", got, want)
		}
	}
}

// BenchmarkChordLookup1k measures one key lookup on a live 1,024-member
// wire-level chord ring — replicated registrations (K=3), four virtual
// positions per member — after the ring has stabilized. Setup boots the
// ring once; each op is one LookupKey from a rotating member, so the
// figure is the per-lookup routing cost (walk RPCs + record pull) the
// chord-1k scenario pays per candidate draw. Like the megacrowd macro
// point its ns/op is wall-clock bound (RPC round trips on the virtual
// substrate), so tools/benchrec records it without gating it.
func BenchmarkChordLookup1k(b *testing.B) {
	const members = 1024
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	clk := clock.NewVirtual()
	clk.SetCoalesce(time.Millisecond)
	stop := clk.AutoRun()
	defer stop()
	vnet := netx.NewVirtual(clk, 1)
	vnet.SetDefaultLink(netx.LinkConfig{Latency: 300 * time.Microsecond})

	peers := make([]*chordnet.Peer, 0, members)
	var boot []string
	for i := 0; i < members; i++ {
		name := fmt.Sprintf("b%d", i)
		p, err := chordnet.New(chordnet.Config{
			ID:        name,
			Class:     bandwidth.Class(1 + i%4),
			Bootstrap: boot,
			Network:   vnet.Host(name),
			Clock:     clk,
			Seed:      int64(i + 1),
			// A slow period keeps the four-digit ring's background repair
			// traffic (members × rounds × notify/replica/finger RPCs) from
			// dominating the boot and the measurement.
			Stabilize:    100 * time.Millisecond,
			Replication:  3,
			VirtualNodes: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		if err := p.Start(); err != nil {
			b.Fatal(err)
		}
		if err := p.Register(ctxb, transport.Register{ID: name, Addr: "overlay-" + name + ":9", Class: bandwidth.Class(1 + i%4)}); err != nil {
			b.Fatalf("register %s: %v", name, err)
		}
		if len(boot) < 4 {
			boot = append(boot, p.Addr())
		}
		peers = append(peers, p)
		// A breather every few joins keeps splices landing on a ring that
		// has absorbed the previous ones — boot stays a growth, not a pile.
		if i%16 == 15 {
			clk.Sleep(10 * time.Millisecond)
		}
	}
	// Let stabilization finish the finger tables (full refresh is
	// FingerBits/fingersPerRound = 16 rounds at the 100ms period).
	clk.Sleep(2 * time.Second)

	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := peers[i%members].LookupKey(ctxb, rng.Uint64()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpochFlip measures one resharding epoch flip end to end for a
// sharded client holding 1,000 registrations: the directory's dir-epoch
// push, the client's migration plan over every held registration, and the
// batched re-registration rounds to the new owners — the ~1/3 of keys
// whose owner changes when the shard set grows 2→3, and their way back on
// the shrink (iterations alternate grow and shrink so every flip moves
// keys). Like the other vnet macros its ns/op is wall-clock bound (RPC
// round trips on the virtual substrate), so tools/benchrec records it
// without gating allocations.
func BenchmarkEpochFlip(b *testing.B) {
	const regs = 1000
	clk := clock.NewVirtual()
	clk.SetCoalesce(time.Millisecond)
	stop := clk.AutoRun()
	defer stop()
	vnet := netx.NewVirtual(clk, 1)
	vnet.SetDefaultLink(netx.LinkConfig{Latency: 300 * time.Microsecond})

	shards := make([]transport.DirShard, 3)
	servers := make([]*directory.Server, 3)
	for i := range shards {
		name := fmt.Sprintf("shard-%d", i)
		srv := directory.NewServer(int64(i + 1))
		l, err := vnet.Host(name).Listen(":0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(l)
		defer srv.Close()
		servers[i] = srv
		shards[i] = transport.DirShard{Name: name, Addr: l.Addr().String()}
	}

	// One ReshardMove event fires per completed migration; the bench gates
	// each iteration on it.
	moved := make(chan struct{}, 1)
	cl, err := directory.NewShardedClient(directory.ShardedConfig{
		Addrs:       []string{shards[0].Addr, shards[1].Addr},
		Names:       []string{shards[0].Name, shards[1].Name},
		Epoch:       1,
		WatchEpochs: true,
		Network:     vnet.Host("client"),
		Clock:       clk,
		Refresh:     time.Hour, // leases out of the way: flips only
		Seed:        1,
		Observer: observe.Func(func(ev observe.Event) {
			if ev.Type == observe.ReshardMove {
				moved <- struct{}{}
			}
		}),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < regs; i++ {
		id := fmt.Sprintf("p%04d", i)
		if err := cl.Register(ctxb, transport.Register{ID: id, Addr: id + ":9", Class: 2}); err != nil {
			b.Fatalf("register %s: %v", id, err)
		}
	}

	epoch := int64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch++
		set := shards
		if i%2 == 1 {
			set = shards[:2]
		}
		ep := transport.DirEpoch{Epoch: epoch, Shards: set}
		for _, s := range servers {
			s.SetEpoch(ep)
		}
		<-moved
	}
}

// ctxb is the benchmarks' background context.
var ctxb = context.Background()

// --- whole-cluster scenario benchmarks ----------------------------------

// benchScenario runs one cataloged live-cluster scenario per iteration on
// a fresh virtual substrate, invariants checked — the cost of a full
// declarative harness run, and a smoke test that the catalog stays green
// when CI runs benchmarks with -benchtime=1x.
func benchScenario(b *testing.B, name string) {
	b.Helper()
	spec, ok := scenario.ByName(name)
	if !ok {
		b.Fatalf("scenario %q not in catalog", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		report, err := scenario.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioFlashCrowd measures the contention-heavy catalog entry:
// eight simultaneous requesters against three seeds.
func BenchmarkScenarioFlashCrowd(b *testing.B) { benchScenario(b, "flash-crowd") }

// BenchmarkScenarioChurnStorm measures the churn-heavy catalog entry:
// 13 hosts, far links, a seed crash, a graceful leave and a late rejoin.
func BenchmarkScenarioChurnStorm(b *testing.B) { benchScenario(b, "churn-storm") }

// --- extension-experiment benchmarks ------------------------------------

// BenchmarkAblationAssign measures the assignment-strategy ablation: 2,000
// random supplier mixes through all four strategies.
func BenchmarkAblationAssign(b *testing.B) { benchExperiment(b, "ablation-assign") }

// BenchmarkAblationDown measures the failure-injection sweep (four
// simulations at down probabilities 0-50%).
func BenchmarkAblationDown(b *testing.B) { benchExperiment(b, "ablation-down") }

// BenchmarkAblationLookup measures the directory-vs-Chord substrate swap.
func BenchmarkAblationLookup(b *testing.B) { benchExperiment(b, "ablation-lookup") }

// BenchmarkReplication measures the 5-seed replication of the headline
// DAC-vs-NDAC comparison (ten simulations).
func BenchmarkReplication(b *testing.B) { benchExperiment(b, "replication") }

// --- multi-object library benchmarks ------------------------------------

// BenchmarkLibraryLookup measures the supplier hot path of the bounded
// node cache: one Get per op against a 64-object library, rotating
// through the whole catalog so every op moves an entry to the LRU front.
// The intrusive list keeps the lookup allocation-free — the gated target
// is 0 allocs/op, so a session start never feeds the collector.
func BenchmarkLibraryLookup(b *testing.B) {
	const objects = 64
	lib := media.NewLibrary(0)
	names := make([]string, objects)
	for i := 0; i < objects; i++ {
		f := &media.File{
			Name:         fmt.Sprintf("obj-%02d", i),
			Segments:     16,
			SegmentBytes: 256,
			SegmentTime:  40 * time.Millisecond,
		}
		store, err := media.NewStore(f)
		if err != nil {
			b.Fatal(err)
		}
		if err := lib.Add(f, store); err != nil {
			b.Fatal(err)
		}
		names[i] = f.Name
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := lib.Get(names[i%objects]); !ok {
			b.Fatalf("object %s missing", names[i%objects])
		}
	}
}
