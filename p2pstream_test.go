package p2pstream_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2pstream"
)

// TestPublicAssign exercises the facade exactly as the package doc shows.
func TestPublicAssign(t *testing.T) {
	suppliers := []p2pstream.Supplier{
		{ID: "a", Class: 1}, {ID: "b", Class: 2},
		{ID: "c", Class: 3}, {ID: "d", Class: 3},
	}
	a, err := p2pstream.Assign(suppliers)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.DelaySlots(); got != p2pstream.OptimalDelaySlots(4) {
		t.Errorf("delay = %d, want 4", got)
	}
	blk, err := p2pstream.BlockAssign(suppliers)
	if err != nil {
		t.Fatal(err)
	}
	if blk.DelaySlots() <= a.DelaySlots() {
		t.Error("block assignment should be strictly worse here")
	}
}

func TestPublicAdmissionSupplier(t *testing.T) {
	s, err := p2pstream.NewAdmissionSupplier(2, 4, p2pstream.DAC)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Favors(1) || s.Favors(3) {
		t.Error("initial favored set wrong")
	}
	if s.Offer() != p2pstream.R0/4 {
		t.Errorf("Offer = %v", s.Offer())
	}
}

func TestPublicSimulate(t *testing.T) {
	cfg := p2pstream.DefaultSimConfig()
	cfg.NumRequesters = 500
	cfg.NumSeeds = 10
	cfg.ArrivalWindow = 6 * time.Hour
	cfg.Horizon = 12 * time.Hour
	res, err := p2pstream.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var admitted int64
	for _, a := range res.Admitted {
		admitted += a
	}
	if admitted == 0 {
		t.Error("no peers admitted")
	}
	if _, ok := res.Capacity.Last(); !ok {
		t.Error("no capacity samples")
	}
}

func TestDefaultSimConfigIsPaperSetup(t *testing.T) {
	cfg := p2pstream.DefaultSimConfig()
	if cfg.NumSeeds != 100 || cfg.NumRequesters != 50000 {
		t.Error("population wrong")
	}
	if cfg.M != 8 || cfg.TOut != 20*time.Minute {
		t.Error("protocol parameters wrong")
	}
	if cfg.Backoff != (p2pstream.BackoffConfig{Base: 10 * time.Minute, Factor: 2}) {
		t.Error("backoff wrong")
	}
	if cfg.SessionDuration != time.Hour || cfg.Horizon != 144*time.Hour {
		t.Error("timing wrong")
	}
	want := p2pstream.Distribution{0.1, 0.1, 0.4, 0.4}
	if len(cfg.ClassDist) != len(want) {
		t.Fatal("distribution length wrong")
	}
	for i := range want {
		if cfg.ClassDist[i] != want[i] {
			t.Error("distribution wrong")
		}
	}
}

// TestPublicOverlayDirectory assembles a complete live overlay — directory,
// two seeds, one requester — through the Overlay entrypoint alone, running
// over a virtual network under virtual time.
func TestPublicOverlayDirectory(t *testing.T) {
	ctx := context.Background()
	clk := p2pstream.NewVirtualClock()
	t.Cleanup(clk.AutoRun())
	vnet := p2pstream.NewVirtualNetwork(clk, 1)
	vnet.SetDefaultLink(p2pstream.LinkConfig{Latency: 300 * time.Microsecond, Jitter: 100 * time.Microsecond})

	dir := p2pstream.NewDirectoryServer(1)
	l, err := vnet.Host("dir").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	go dir.Serve(l)
	t.Cleanup(func() { dir.Close() })

	file := &p2pstream.MediaFile{Name: "v", Segments: 16, SegmentBytes: 64, SegmentTime: 4 * time.Millisecond}
	ov, err := p2pstream.NewOverlay(file,
		p2pstream.WithDirectory(l.Addr().String()),
		p2pstream.WithClock(clk),
		p2pstream.WithNetworkFor(func(id string) p2pstream.Network { return vnet.Host(id) }),
		p2pstream.WithIdleTimeout(50*time.Millisecond),
		p2pstream.WithBackoff(p2pstream.BackoffConfig{Base: 20 * time.Millisecond, Factor: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ov.Close() })
	for _, id := range []string{"s1", "s2"} {
		if _, err := ov.Seed(ctx, p2pstream.OverlayPeer{ID: id, Class: 1}); err != nil {
			t.Fatal(err)
		}
	}
	req, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "r", Class: 1})
	if err != nil {
		t.Fatal(err)
	}

	report, err := req.RequestUntilAdmitted(ctx, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Report.Continuous() {
		t.Errorf("playback stalled %d times", report.Report.Stalls)
	}
	if !req.Store().Complete() || !req.Supplying() {
		t.Error("requester did not finish as a supplying peer")
	}
	if got := len(ov.Nodes()); got != 3 {
		t.Errorf("overlay tracks %d nodes, want 3", got)
	}
	if err := ov.Close(); err != nil {
		t.Fatal(err)
	}
	if req.Supplying() {
		t.Error("Close left a node supplying")
	}
	if _, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "late", Class: 1}); err == nil {
		t.Error("peer creation on a closed overlay should fail")
	}
}

// TestPublicOverlayChord assembles a fully decentralized overlay through
// the Overlay entrypoint: no directory server anywhere — seeds found a
// chord ring (the overlay chains bootstrap membership automatically), the
// requester samples its candidates through it, and joins the ring itself
// after being served.
func TestPublicOverlayChord(t *testing.T) {
	ctx := context.Background()
	clk := p2pstream.NewVirtualClock()
	t.Cleanup(clk.AutoRun())
	vnet := p2pstream.NewVirtualNetwork(clk, 1)
	vnet.SetDefaultLink(p2pstream.LinkConfig{Latency: 300 * time.Microsecond})

	file := &p2pstream.MediaFile{Name: "v", Segments: 16, SegmentBytes: 64, SegmentTime: 4 * time.Millisecond}
	ov, err := p2pstream.NewOverlay(file,
		p2pstream.WithChord(p2pstream.ChordDiscoveryConfig{}),
		p2pstream.WithClock(clk),
		p2pstream.WithNetworkFor(func(id string) p2pstream.Network { return vnet.Host(id) }),
		p2pstream.WithIdleTimeout(50*time.Millisecond),
		p2pstream.WithBackoff(p2pstream.BackoffConfig{Base: 20 * time.Millisecond, Factor: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ov.Close() })
	for _, id := range []string{"s1", "s2"} {
		if _, err := ov.Seed(ctx, p2pstream.OverlayPeer{ID: id, Class: 1}); err != nil {
			t.Fatal(err)
		}
	}
	req, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "r", Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	report, err := req.RequestUntilAdmitted(ctx, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suppliers) != 2 {
		t.Errorf("served by %d suppliers, want both seeds", len(report.Suppliers))
	}
	if !req.Store().Complete() || !req.Supplying() {
		t.Error("requester did not finish as a supplying peer")
	}
}

// TestPublicOverlayChordReplicated drives the replicated chord ring
// through the facade: WithChordReplication and WithChordVirtualNodes reach
// every peer's chordnet config, and when a seed crashes on a
// slow-stabilizing ring (so no repair round can heal it mid-test), later
// requesters are still served through the replica fail-over path — the
// observer sees EventReplicaAnswered and never EventLookupMiss.
func TestPublicOverlayChordReplicated(t *testing.T) {
	ctx := context.Background()
	file := &p2pstream.MediaFile{Name: "v", Segments: 8, SegmentBytes: 64, SegmentTime: 4 * time.Millisecond}

	// The replication options require the chord backend and reject
	// negative degrees.
	if _, err := p2pstream.NewOverlay(file,
		p2pstream.WithDirectory("dir:1"), p2pstream.WithChordReplication(2),
	); err == nil {
		t.Error("WithChordReplication on a directory overlay should fail")
	}
	if _, err := p2pstream.NewOverlay(file,
		p2pstream.WithChord(p2pstream.ChordDiscoveryConfig{}), p2pstream.WithChordVirtualNodes(-1),
	); err == nil {
		t.Error("WithChordVirtualNodes(-1) should fail")
	}

	clk := p2pstream.NewVirtualClock()
	t.Cleanup(clk.AutoRun())
	vnet := p2pstream.NewVirtualNetwork(clk, 1)
	vnet.SetDefaultLink(p2pstream.LinkConfig{Latency: 300 * time.Microsecond})

	var replicaAnswered, lookupMisses atomic.Int64
	obs := p2pstream.ObserverFunc(func(e p2pstream.ObserverEvent) {
		switch e.Type {
		case p2pstream.EventReplicaAnswered:
			replicaAnswered.Add(1)
		case p2pstream.EventLookupMiss:
			lookupMisses.Add(1)
		}
	})
	ov, err := p2pstream.NewOverlay(file,
		// Stabilization far slower than the test: the crashed seed stays
		// spliced into the ring throughout, so only replicas can cover it.
		p2pstream.WithChord(p2pstream.ChordDiscoveryConfig{Stabilize: 2 * time.Second}),
		p2pstream.WithChordReplication(2),
		p2pstream.WithChordVirtualNodes(4),
		p2pstream.WithObserver(obs),
		p2pstream.WithClock(clk),
		p2pstream.WithNetworkFor(func(id string) p2pstream.Network { return vnet.Host(id) }),
		p2pstream.WithIdleTimeout(50*time.Millisecond),
		p2pstream.WithBackoff(p2pstream.BackoffConfig{Base: 10 * time.Millisecond, Factor: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ov.Close() })
	for _, id := range []string{"s1", "s2", "s3", "s4"} {
		if _, err := ov.Seed(ctx, p2pstream.OverlayPeer{ID: id, Class: 1}); err != nil {
			t.Fatal(err)
		}
	}
	first, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "r0", Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.RequestUntilAdmitted(ctx, "", 8); err != nil {
		t.Fatal(err)
	}

	vnet.SetDown("s3")
	// Several post-crash requesters: each one's candidate sampling draws
	// random keys, and draws landing in the corpse's arcs must be answered
	// by its replicas (never come up empty). The loop bounds the run; the
	// per-peer seeded RNGs make the draws themselves deterministic.
	for i := 1; i <= 4 && replicaAnswered.Load() == 0; i++ {
		req, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: fmt.Sprintf("r%d", i), Class: 1})
		if err != nil {
			t.Fatal(err)
		}
		report, err := req.RequestUntilAdmitted(ctx, "", 8)
		if err != nil {
			t.Fatalf("r%d after crash: %v", i, err)
		}
		for _, s := range report.Suppliers {
			if s.ID == "s3" {
				t.Fatalf("r%d was served by the crashed seed", i)
			}
		}
	}
	if replicaAnswered.Load() == 0 {
		t.Error("no lookup was answered by a replica — the fail-over path never ran")
	}
	if n := lookupMisses.Load(); n != 0 {
		t.Errorf("%d candidate lookups came up empty — the churn window opened", n)
	}
}

// TestPublicOverlaySharded assembles a sharded-directory overlay through
// the Overlay entrypoint: three DirectoryServer shards behind
// WithDirectory, with the unified Observer counting per-shard fan-out
// legs — and the same declarative scenario surface crashing and
// rebirthing a shard mid-run.
func TestPublicOverlaySharded(t *testing.T) {
	ctx := context.Background()
	clk := p2pstream.NewVirtualClock()
	t.Cleanup(clk.AutoRun())
	vnet := p2pstream.NewVirtualNetwork(clk, 1)
	vnet.SetDefaultLink(p2pstream.LinkConfig{Latency: 300 * time.Microsecond})

	var addrs []string
	for i := 0; i < 3; i++ {
		srv := p2pstream.NewDirectoryServer(int64(i + 1))
		l, err := vnet.Host(p2pstream.ScenarioShardHost(i)).Listen(":0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, l.Addr().String())
	}

	var shardLegs atomic.Int64
	file := &p2pstream.MediaFile{Name: "v", Segments: 16, SegmentBytes: 64, SegmentTime: 4 * time.Millisecond}
	ov, err := p2pstream.NewOverlay(file,
		p2pstream.WithDirectory(addrs...),
		p2pstream.WithClock(clk),
		p2pstream.WithNetworkFor(func(id string) p2pstream.Network { return vnet.Host(id) }),
		p2pstream.WithObserver(p2pstream.ObserverFunc(func(ev p2pstream.ObserverEvent) {
			if ev.Type == p2pstream.EventShardLookup {
				shardLegs.Add(1)
			}
		})),
		p2pstream.WithIdleTimeout(50*time.Millisecond),
		p2pstream.WithBackoff(p2pstream.BackoffConfig{Base: 20 * time.Millisecond, Factor: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ov.Close() })
	for _, id := range []string{"s1", "s2"} {
		if _, err := ov.Seed(ctx, p2pstream.OverlayPeer{ID: id, Class: 1}); err != nil {
			t.Fatal(err)
		}
	}
	req, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "r", Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	report, err := req.RequestUntilAdmitted(ctx, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suppliers) != 2 {
		t.Errorf("served by %d suppliers, want both seeds", len(report.Suppliers))
	}
	if got := shardLegs.Load(); got < 3 {
		t.Errorf("observer saw %d shard fan-out legs, want >= one 3-shard fan-out", got)
	}

	// The same surface drives a declarative sharded fault scenario.
	scen, err := p2pstream.RunScenario(p2pstream.Scenario{
		Name:            "facade-sharded",
		DirectoryShards: 3,
		Seeds:           []p2pstream.ScenarioPeer{{ID: "s1", Class: 1}, {ID: "s5", Class: 1}, {ID: "r3", Class: 1}},
		Requesters: []p2pstream.ScenarioPeer{
			{ID: "n0", Class: 1},
			{ID: "n1", Class: 1, Start: 100 * time.Millisecond},
		},
		Churn: []p2pstream.ScenarioChurnEvent{
			{At: 40 * time.Millisecond, Action: p2pstream.ScenarioCrash, Node: p2pstream.ScenarioShardHost(2)},
			{At: 200 * time.Millisecond, Action: p2pstream.ScenarioJoin, Node: p2pstream.ScenarioShardHost(2)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := scen.Check(); err != nil {
		t.Fatalf("sharded scenario invariants: %v\n%s", err, scen.Summary())
	}
	if len(scen.ShardSuppliers) != 3 {
		t.Errorf("ShardSuppliers = %v, want 3 shards", scen.ShardSuppliers)
	}
	if len(scen.ShardStats) != 3 {
		t.Errorf("ShardStats = %v, want 3 shards", scen.ShardStats)
	}
	if scen.ShardLookupMs.Len() == 0 {
		t.Error("sharded scenario recorded no shard fan-out latency samples")
	}
}

// TestPublicOverlayElastic drives the elastic directory through the
// facade: a resharding controller attached with WithAutoscale grows the
// registry from one shard to two under a requester's lookup load, every
// peer's sharded client migrates across the flip, and a peer created
// after the flip boots straight into the new epoch — zero lookup misses
// throughout.
func TestPublicOverlayElastic(t *testing.T) {
	ctx := context.Background()
	clk := p2pstream.NewVirtualClock()
	t.Cleanup(clk.AutoRun())
	vnet := p2pstream.NewVirtualNetwork(clk, 1)
	vnet.SetDefaultLink(p2pstream.LinkConfig{Latency: 300 * time.Microsecond})

	var srvMu sync.Mutex
	var servers []*p2pstream.DirectoryServer
	t.Cleanup(func() {
		srvMu.Lock()
		defer srvMu.Unlock()
		for _, s := range servers {
			s.Close()
		}
	})
	spawn := func(seq int) (p2pstream.ReshardMember, error) {
		name := fmt.Sprintf("shard-%d", seq)
		srv := p2pstream.NewDirectoryServer(int64(seq + 1))
		l, err := vnet.Host(name).Listen(":0")
		if err != nil {
			return p2pstream.ReshardMember{}, err
		}
		go srv.Serve(l)
		srvMu.Lock()
		servers = append(servers, srv)
		srvMu.Unlock()
		return p2pstream.ReshardMember{Name: name, Addr: l.Addr().String(), Server: srv}, nil
	}
	first, err := spawn(0)
	if err != nil {
		t.Fatal(err)
	}
	var flips, added, moves, misses atomic.Int64
	obs := p2pstream.ObserverFunc(func(ev p2pstream.ObserverEvent) {
		switch ev.Type {
		case p2pstream.EventEpochFlip:
			flips.Add(1)
		case p2pstream.EventShardAdded:
			added.Add(1)
		case p2pstream.EventReshardMove:
			moves.Add(1)
		case p2pstream.EventLookupMiss:
			misses.Add(1)
		}
	})
	ctrl, err := p2pstream.NewReshardController(p2pstream.ReshardConfig{
		Clock:     clk,
		Interval:  20 * time.Millisecond,
		HighWater: 0.5,
		LowWater:  0,
		Sustain:   1,
		MaxShards: 2,
		Members:   []p2pstream.ReshardMember{first},
		Spawn:     spawn,
		Observer:  obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctrl.Close)

	file := &p2pstream.MediaFile{Name: "v", Segments: 16, SegmentBytes: 64, SegmentTime: 4 * time.Millisecond}
	ov, err := p2pstream.NewOverlay(file,
		p2pstream.WithAutoscale(ctrl),
		p2pstream.WithClock(clk),
		p2pstream.WithNetworkFor(func(id string) p2pstream.Network { return vnet.Host(id) }),
		p2pstream.WithObserver(obs),
		p2pstream.WithIdleTimeout(50*time.Millisecond),
		p2pstream.WithBackoff(p2pstream.BackoffConfig{Base: 20 * time.Millisecond, Factor: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ov.Close() })
	ctrl.Start()

	for _, id := range []string{"s1", "s2"} {
		if _, err := ov.Seed(ctx, p2pstream.OverlayPeer{ID: id, Class: 1}); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "r1", Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.RequestUntilAdmitted(ctx, "", 5); err != nil {
		t.Fatal(err)
	}

	// r1's lookups put the single shard over the high-water mark; the next
	// sampling tick must spawn shard-1 and flip the epoch.
	deadline := time.Now().Add(10 * time.Second)
	for ctrl.Flips() < 1 || moves.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never flipped: flips=%d moves=%d", ctrl.Flips(), moves.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if epoch, members := ctrl.Snapshot(); epoch < 2 || len(members) != 2 {
		t.Fatalf("post-flip snapshot epoch=%d shards=%d, want epoch >= 2 with 2 shards", epoch, len(members))
	}
	if flips.Load() < 1 || added.Load() < 1 {
		t.Errorf("observer saw %d flips and %d shard-adds, want >= 1 each", flips.Load(), added.Load())
	}

	// A peer created after the flip boots from the controller's live
	// snapshot and must still find both seeds on the grown shard set.
	r2, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "r2", Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	report, err := r2.RequestUntilAdmitted(ctx, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suppliers) < 2 {
		t.Errorf("post-flip requester served by %d suppliers, want >= 2", len(report.Suppliers))
	}
	if got := misses.Load(); got != 0 {
		t.Errorf("observer saw %d lookup misses across the flip, want 0", got)
	}
}

// TestPublicOverlayElasticOptionErrors pins the elastic options' misuse
// errors: WithAutoscale rejects a nil controller, and both elastic options
// require the sharded directory backend.
func TestPublicOverlayElasticOptionErrors(t *testing.T) {
	file := &p2pstream.MediaFile{Name: "v", Segments: 4, SegmentBytes: 16, SegmentTime: time.Millisecond}
	if _, err := p2pstream.NewOverlay(file, p2pstream.WithAutoscale(nil)); err == nil {
		t.Error("WithAutoscale(nil) built an overlay, want error")
	}
	if _, err := p2pstream.NewOverlay(file,
		p2pstream.WithDirectory("127.0.0.1:7000"),
		p2pstream.WithShardEpochs(),
	); err == nil {
		t.Error("WithShardEpochs over the centralized directory built an overlay, want error")
	}
	srv := p2pstream.NewDirectoryServer(1)
	defer srv.Close()
	ctrl, err := p2pstream.NewReshardController(p2pstream.ReshardConfig{
		Interval:  time.Second,
		HighWater: 1,
		Members:   []p2pstream.ReshardMember{{Name: "shard-0", Addr: "127.0.0.1:7000", Server: srv}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if _, err := p2pstream.NewOverlay(file,
		p2pstream.WithChord(p2pstream.ChordDiscoveryConfig{}),
		p2pstream.WithAutoscale(ctrl),
	); err == nil {
		t.Error("WithAutoscale over chord discovery built an overlay, want error")
	}
}

// TestDeprecatedConstructorsStillWork drives the deprecated per-component
// facade (NewSeedNode, NewRequesterNode, the NodeConfig plumbing) once:
// the aliases must keep compiling and serving until removed.
func TestDeprecatedConstructorsStillWork(t *testing.T) {
	ctx := context.Background()
	clk := p2pstream.NewVirtualClock()
	t.Cleanup(clk.AutoRun())
	vnet := p2pstream.NewVirtualNetwork(clk, 1)
	vnet.SetDefaultLink(p2pstream.LinkConfig{Latency: 300 * time.Microsecond})

	dir := p2pstream.NewDirectoryServer(1)
	l, err := vnet.Host("dir").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	go dir.Serve(l)
	t.Cleanup(func() { dir.Close() })

	file := &p2pstream.MediaFile{Name: "v", Segments: 16, SegmentBytes: 64, SegmentTime: 4 * time.Millisecond}
	cfg := func(id string, class p2pstream.Class) p2pstream.NodeConfig {
		return p2pstream.NodeConfig{
			ID: id, Class: class, NumClasses: 4, Policy: p2pstream.DAC,
			Discovery: p2pstream.NewDirectoryClient(vnet.Host(id), l.Addr().String()),
			File:      file, M: 8,
			TOut:    50 * time.Millisecond,
			Backoff: p2pstream.BackoffConfig{Base: 20 * time.Millisecond, Factor: 2},
			Seed:    1, Clock: clk, Network: vnet.Host(id),
		}
	}
	for _, id := range []string{"s1", "s2"} {
		seed, err := p2pstream.NewSeedNode(cfg(id, 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := seed.Start(ctx); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { seed.Close() })
	}
	req, err := p2pstream.NewRequesterNode(cfg("r", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := req.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { req.Close() })
	if _, err := req.RequestUntilAdmitted(ctx, "", 5); err != nil {
		t.Fatal(err)
	}
	if !req.Supplying() {
		t.Error("requester did not finish as a supplying peer")
	}
}

// TestPublicDeclarativeScenario runs a declarative scenario through the
// facade: a Spec assembled as data, executed by RunScenario, checked by
// the report's invariants — plus catalog access by name.
func TestPublicDeclarativeScenario(t *testing.T) {
	report, err := p2pstream.RunScenario(p2pstream.Scenario{
		Name:  "facade",
		Seeds: []p2pstream.ScenarioPeer{{ID: "s1", Class: 1}, {ID: "s2", Class: 1}},
		Requesters: []p2pstream.ScenarioPeer{
			{ID: "r1", Class: 1},
			{ID: "r2", Class: 2, Start: 80 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Check(); err != nil {
		t.Fatal(err)
	}
	if report.Served() != 2 {
		t.Errorf("served = %d, want 2", report.Served())
	}
	if len(p2pstream.ScenarioCatalog()) < 8 {
		t.Errorf("catalog has %d scenarios, want >= 8", len(p2pstream.ScenarioCatalog()))
	}
	if _, ok := p2pstream.ScenarioByName("flash-crowd"); !ok {
		t.Error("flash-crowd missing from the catalog")
	}
}

// TestPublicOverlayCongestion drives the congestion-aware data plane
// through the public facade: the seed's link is bandwidth-capped below the
// stream's full-quality wire rate, so the supplier must pace, the estimate
// converges under the committed rate, and the bitrate ladder steps down —
// while the startup buffer keeps playback continuous.
func TestPublicOverlayCongestion(t *testing.T) {
	ctx := context.Background()
	clk := p2pstream.NewVirtualClock()
	t.Cleanup(clk.AutoRun())
	vnet := p2pstream.NewVirtualNetwork(clk, 1)
	vnet.SetDefaultLink(p2pstream.LinkConfig{Latency: 300 * time.Microsecond})
	// The two supplier links share the requester's ingress bottleneck, so
	// their caps act as one pipe: the combined full-quality wire rate
	// (~184 KB/s) cannot fit through 140 KiB/s, the combined first-step
	// rendition (~100 KB/s) can.
	vnet.SetLink("s1", "r", p2pstream.LinkConfig{Latency: 300 * time.Microsecond, Bandwidth: 140 << 10})
	vnet.SetLink("s2", "r", p2pstream.LinkConfig{Latency: 300 * time.Microsecond, Bandwidth: 140 << 10})

	dir := p2pstream.NewDirectoryServer(1)
	l, err := vnet.Host("dir").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	go dir.Serve(l)
	t.Cleanup(func() { dir.Close() })

	file := &p2pstream.MediaFile{Name: "v", Segments: 16, SegmentBytes: 1024, SegmentTime: 8 * time.Millisecond}
	ov, err := p2pstream.NewOverlay(file,
		p2pstream.WithDirectory(l.Addr().String()),
		p2pstream.WithClock(clk),
		p2pstream.WithNetworkFor(func(id string) p2pstream.Network { return vnet.Host(id) }),
		p2pstream.WithStartupBuffer(32*time.Millisecond),
		p2pstream.WithBackoff(p2pstream.BackoffConfig{Base: 20 * time.Millisecond, Factor: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ov.Close() })
	for _, id := range []string{"s1", "s2"} {
		if _, err := ov.Seed(ctx, p2pstream.OverlayPeer{ID: id, Class: 1}); err != nil {
			t.Fatal(err)
		}
	}
	req, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "r", Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	report, err := req.RequestUntilAdmitted(ctx, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Report.Continuous() {
		t.Errorf("playback stalled %d times despite the ABR ladder", report.Report.Stalls)
	}
	if report.Downgraded == 0 {
		t.Error("session on a capped link never downgraded")
	}
	if report.MaxQuality == 0 {
		t.Error("MaxQuality still full despite downgraded segments")
	}

	// The option constructors validate their domain.
	if _, err := p2pstream.NewOverlay(file,
		p2pstream.WithDirectory(l.Addr().String()),
		p2pstream.WithPriority(-1),
	); err == nil {
		t.Error("negative priority accepted")
	}
	if _, err := p2pstream.NewOverlay(file,
		p2pstream.WithDirectory(l.Addr().String()),
		p2pstream.WithStartupBuffer(-time.Millisecond),
	); err == nil {
		t.Error("negative startup buffer accepted")
	}
}

// TestPublicOverlayNoAdaptation: the control plane of the same experiment —
// WithoutAdaptation restores the burst-on-schedule sender, which on the
// same capped link either stalls playback or drops at the queue. This is
// the public-facade version of the scenario suite's NoAdapt control runs.
func TestPublicOverlayNoAdaptation(t *testing.T) {
	ctx := context.Background()
	clk := p2pstream.NewVirtualClock()
	t.Cleanup(clk.AutoRun())
	vnet := p2pstream.NewVirtualNetwork(clk, 1)
	vnet.SetDefaultLink(p2pstream.LinkConfig{Latency: 300 * time.Microsecond})
	vnet.SetLink("s1", "r", p2pstream.LinkConfig{Latency: 300 * time.Microsecond, Bandwidth: 140 << 10})
	vnet.SetLink("s2", "r", p2pstream.LinkConfig{Latency: 300 * time.Microsecond, Bandwidth: 140 << 10})

	dir := p2pstream.NewDirectoryServer(1)
	l, err := vnet.Host("dir").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	go dir.Serve(l)
	t.Cleanup(func() { dir.Close() })

	file := &p2pstream.MediaFile{Name: "v", Segments: 16, SegmentBytes: 1024, SegmentTime: 8 * time.Millisecond}
	ov, err := p2pstream.NewOverlay(file,
		p2pstream.WithDirectory(l.Addr().String()),
		p2pstream.WithClock(clk),
		p2pstream.WithNetworkFor(func(id string) p2pstream.Network { return vnet.Host(id) }),
		p2pstream.WithoutAdaptation(),
		p2pstream.WithBackoff(p2pstream.BackoffConfig{Base: 20 * time.Millisecond, Factor: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ov.Close() })
	for _, id := range []string{"s1", "s2"} {
		if _, err := ov.Seed(ctx, p2pstream.OverlayPeer{ID: id, Class: 1}); err != nil {
			t.Fatal(err)
		}
	}
	req, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "r", Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	report, err := req.RequestUntilAdmitted(ctx, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	if report.Downgraded != 0 {
		t.Errorf("unadapted sender downgraded %d segments", report.Downgraded)
	}
	if report.Report.Continuous() {
		t.Error("burst sender on the capped link played continuously; the congestion control is not being exercised")
	}
}
