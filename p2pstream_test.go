package p2pstream_test

import (
	"testing"
	"time"

	"p2pstream"
)

// TestPublicAssign exercises the facade exactly as the package doc shows.
func TestPublicAssign(t *testing.T) {
	suppliers := []p2pstream.Supplier{
		{ID: "a", Class: 1}, {ID: "b", Class: 2},
		{ID: "c", Class: 3}, {ID: "d", Class: 3},
	}
	a, err := p2pstream.Assign(suppliers)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.DelaySlots(); got != p2pstream.OptimalDelaySlots(4) {
		t.Errorf("delay = %d, want 4", got)
	}
	blk, err := p2pstream.BlockAssign(suppliers)
	if err != nil {
		t.Fatal(err)
	}
	if blk.DelaySlots() <= a.DelaySlots() {
		t.Error("block assignment should be strictly worse here")
	}
}

func TestPublicAdmissionSupplier(t *testing.T) {
	s, err := p2pstream.NewAdmissionSupplier(2, 4, p2pstream.DAC)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Favors(1) || s.Favors(3) {
		t.Error("initial favored set wrong")
	}
	if s.Offer() != p2pstream.R0/4 {
		t.Errorf("Offer = %v", s.Offer())
	}
}

func TestPublicSimulate(t *testing.T) {
	cfg := p2pstream.DefaultSimConfig()
	cfg.NumRequesters = 500
	cfg.NumSeeds = 10
	cfg.ArrivalWindow = 6 * time.Hour
	cfg.Horizon = 12 * time.Hour
	res, err := p2pstream.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var admitted int64
	for _, a := range res.Admitted {
		admitted += a
	}
	if admitted == 0 {
		t.Error("no peers admitted")
	}
	if _, ok := res.Capacity.Last(); !ok {
		t.Error("no capacity samples")
	}
}

func TestDefaultSimConfigIsPaperSetup(t *testing.T) {
	cfg := p2pstream.DefaultSimConfig()
	if cfg.NumSeeds != 100 || cfg.NumRequesters != 50000 {
		t.Error("population wrong")
	}
	if cfg.M != 8 || cfg.TOut != 20*time.Minute {
		t.Error("protocol parameters wrong")
	}
	if cfg.Backoff != (p2pstream.BackoffConfig{Base: 10 * time.Minute, Factor: 2}) {
		t.Error("backoff wrong")
	}
	if cfg.SessionDuration != time.Hour || cfg.Horizon != 144*time.Hour {
		t.Error("timing wrong")
	}
	want := p2pstream.Distribution{0.1, 0.1, 0.4, 0.4}
	if len(cfg.ClassDist) != len(want) {
		t.Fatal("distribution length wrong")
	}
	for i := range want {
		if cfg.ClassDist[i] != want[i] {
			t.Error("distribution wrong")
		}
	}
}
