// Package p2pstream is a Go implementation of the peer-to-peer media
// streaming system of "On Peer-to-Peer Media Streaming" (Dongyan Xu,
// Mohamed Hefeeda, Susanne Hambrusch, Bharat Bhargava; ICDCS 2002).
//
// The paper studies on-demand streaming of a CBR media file where every
// session is served by multiple supplying peers and every served peer
// becomes a supplier, and contributes two mechanisms, both implemented
// here:
//
//   - OTS_p2p (Section 3): the optimal assignment of media segments to a
//     session's heterogeneous suppliers, minimizing buffering delay
//     (Theorem 1: the minimum is n·δt for n suppliers). See Assign.
//
//   - DAC_p2p (Section 4): a fully distributed, differentiated admission
//     control protocol in which suppliers probabilistically favor
//     requesting peers that pledge more out-bound bandwidth, relax when
//     idle and tighten on "reminders" — amplifying total system capacity
//     faster than the non-differentiated baseline NDAC_p2p. See Supplier
//     (state machine) and Simulate (whole-system evaluation).
//
// The package re-exports the stable core of the internal implementation:
//
//   - bandwidth classes and exact offer arithmetic (Class, Fraction, R0);
//   - the assignment algorithms and schedule analysis (Assign, BlockAssign,
//     Assignment);
//   - the admission protocol building blocks (Vector, Supplier, Policy);
//   - the discrete-event whole-system simulator behind the paper's
//     evaluation (Simulate, SimConfig, SimResult);
//   - the live overlay behind one context-first entrypoint: an Overlay
//     built with functional options wires nodes (Node), discovery and
//     lifecycle for all three discovery backends — the centralized
//     directory (WithDirectory), the consistent-hash sharded directory
//     (WithShardedDirectory) and the fully decentralized wire-level Chord
//     ring (WithChord) — and runs over real TCP on the wall clock or, for
//     deterministic millisecond-fast cluster scenarios, over an in-memory
//     virtual network (WithNetwork, WithNetworkFor) under a virtual clock
//     (WithClock). The whole request path takes a context.Context
//     (cancellation and deadlines abort dials, probes and sessions),
//     failures are typed errors.Is-able sentinels (ErrRejected,
//     ErrNoSuppliers, ErrClosed, ErrAllShardsDown), and one Observer
//     (WithObserver) receives every component's events;
//
// A live overlay session, end to end:
//
//	ov, _ := p2pstream.NewOverlay(file, p2pstream.WithDirectory("127.0.0.1:7000"))
//	defer ov.Close()
//	seed, _ := ov.Seed(ctx, p2pstream.OverlayPeer{ID: "s1", Class: 1})
//	req, _ := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "r1", Class: 2})
//	report, _ := req.RequestUntilAdmitted(ctx, "", 10)
//
// A minimal assignment:
//
//	suppliers := []p2pstream.Supplier{
//		{ID: "a", Class: 1}, {ID: "b", Class: 2},
//		{ID: "c", Class: 3}, {ID: "d", Class: 3},
//	}
//	a, err := p2pstream.Assign(suppliers)
//	// a.Segments[i] is what suppliers[i] transmits; delay = 4·δt.
//
// And the paper's headline experiment:
//
//	cfg := p2pstream.DefaultSimConfig() // 100 seeds, 50,000 peers, 144 h
//	res, err := p2pstream.Simulate(cfg)
//	// res.Capacity is Figure 4's curve; res.AvgRejections is Table 1.
package p2pstream

import (
	"p2pstream/internal/bandwidth"
	"p2pstream/internal/chordnet"
	"p2pstream/internal/clock"
	"p2pstream/internal/core"
	"p2pstream/internal/dac"
	"p2pstream/internal/directory"
	"p2pstream/internal/media"
	"p2pstream/internal/netx"
	"p2pstream/internal/node"
	"p2pstream/internal/reshard"
	"p2pstream/internal/scenario"
	"p2pstream/internal/system"
)

// Class identifies a peer bandwidth class; a class-c peer offers out-bound
// bandwidth R0/2^c. Lower numbers are higher classes.
type Class = bandwidth.Class

// Fraction is an exact bandwidth amount in binary fractions of the
// playback rate R0.
type Fraction = bandwidth.Fraction

// R0 is the media playback rate in Fraction units.
const R0 = bandwidth.R0

// Distribution describes the population share of each class.
type Distribution = bandwidth.Distribution

// Supplier is one supplying peer in a streaming session.
type Supplier = core.Supplier

// Assignment maps media segments to the session's suppliers.
type Assignment = core.Assignment

// Assign computes the optimal OTS_p2p media data assignment. The suppliers'
// offers must sum to exactly R0; the resulting buffering delay is
// len(suppliers)·δt (Theorem 1).
func Assign(suppliers []Supplier) (*Assignment, error) { return core.Assign(suppliers) }

// BlockAssign computes the naive contiguous-block assignment the paper uses
// as "Assignment I" in Figure 1 — correct but suboptimal.
func BlockAssign(suppliers []Supplier) (*Assignment, error) { return core.BlockAssign(suppliers) }

// OptimalDelaySlots returns Theorem 1's minimum buffering delay, in δt
// slots, for a session with n suppliers.
func OptimalDelaySlots(n int) int64 { return core.OptimalDelaySlots(n) }

// Policy selects the admission protocol.
type Policy = dac.Policy

// Admission control policies.
const (
	// DAC is the paper's differentiated admission control protocol.
	DAC = dac.DAC
	// NDAC is the non-differentiated baseline.
	NDAC = dac.NDAC
)

// Vector is a supplying peer's per-class admission probability vector.
type Vector = dac.Vector

// AdmissionSupplier is the supplying-peer side of the admission protocol: a
// deterministic state machine over probes, reminders, sessions and idle
// timeouts.
type AdmissionSupplier = dac.Supplier

// NewAdmissionSupplier returns the admission state of a class-own supplier
// in a system with numClasses classes.
func NewAdmissionSupplier(own, numClasses Class, policy Policy) (*AdmissionSupplier, error) {
	return dac.NewSupplier(own, numClasses, policy)
}

// BackoffConfig holds the requester retry parameters T_bkf and E_bkf.
type BackoffConfig = dac.BackoffConfig

// SimConfig parameterizes a whole-system simulation run.
type SimConfig = system.Config

// SimResult carries the metrics behind every figure and table of the
// paper's evaluation.
type SimResult = system.Result

// DefaultSimConfig returns the paper's Section 5.1 setup.
func DefaultSimConfig() SimConfig { return system.DefaultConfig() }

// Simulate executes one whole-system simulation.
func Simulate(cfg SimConfig) (*SimResult, error) { return system.Run(cfg) }

// Scenario surface: the live overlay node plus the pluggable clock and
// network substrates that let the same node run over real TCP or inside a
// deterministic virtual cluster.

// Clock is the time source and scheduler of the session layer: the wall
// clock (SystemClock) or a virtual clock (NewVirtualClock).
type Clock = clock.Clock

// VirtualClock is a concurrency-safe virtual clock; drive it with Advance
// or AutoRun.
type VirtualClock = clock.Virtual

// SystemClock returns the real wall clock.
func SystemClock() Clock { return clock.System() }

// NewVirtualClock returns a virtual clock for deterministic scenarios.
func NewVirtualClock() *VirtualClock { return clock.NewVirtual() }

// Network provides the overlay's listeners and connections: real TCP
// (SystemNetwork) or an in-memory virtual network (NewVirtualNetwork).
type Network = netx.Network

// VirtualNetwork is an in-memory network of named hosts with per-link
// latency, jitter, dial-drop probability and host churn.
type VirtualNetwork = netx.Virtual

// LinkConfig describes one virtual-network link.
type LinkConfig = netx.LinkConfig

// SystemNetwork returns the real TCP network.
func SystemNetwork() Network { return netx.System }

// NewVirtualNetwork returns an empty virtual network whose delays run on
// clk; the seed fixes jitter and drop randomness.
func NewVirtualNetwork(clk Clock, seed int64) *VirtualNetwork { return netx.NewVirtual(clk, seed) }

// Node is a live peer of the streaming overlay.
type Node = node.Node

// NodeConfig parameterizes a live node; its Clock and Network fields
// select the runtime substrate (nil means wall clock over real TCP).
type NodeConfig = node.Config

// SessionReport describes a completed streaming session from the
// requester's perspective.
type SessionReport = node.SessionReport

// NewSeedNode creates a live peer that already holds the media file and
// supplies immediately once started.
//
// Deprecated: create peers through an Overlay (NewOverlay + Overlay.Seed),
// which wires discovery and lifecycle for all three backends behind one
// type. NewSeedNode remains for callers assembling a NodeConfig by hand.
func NewSeedNode(cfg NodeConfig) (*Node, error) { return node.NewSeed(cfg) }

// NewRequesterNode creates a live peer that requests the stream and then
// supplies.
//
// Deprecated: create peers through an Overlay (NewOverlay +
// Overlay.Requester). NewRequesterNode remains for callers assembling a
// NodeConfig by hand.
func NewRequesterNode(cfg NodeConfig) (*Node, error) { return node.NewRequester(cfg) }

// Discovery backends: how a live peer finds the overlay (paper Section
// 4.2, footnote 4). Two implementations ship — the Napster-style
// centralized directory and a fully decentralized wire-level Chord ring.

// Discovery abstracts peer discovery for a live node:
// register/unregister as a supplier and sample candidate suppliers. Set
// NodeConfig.Discovery to choose a backend; nil selects a directory
// client for NodeConfig.DirectoryAddr.
type Discovery = node.Discovery

// DirectoryServer is the overlay's Napster-style lookup service; serve it
// on any listener of the chosen Network.
type DirectoryServer = directory.Server

// NewDirectoryServer returns an empty directory server; the seed fixes
// candidate sampling.
func NewDirectoryServer(seed int64) *DirectoryServer { return directory.NewServer(seed) }

// DirectoryClient is the centralized Discovery backend: one
// request/response dial per call against a DirectoryServer.
type DirectoryClient = directory.Client

// NewDirectoryClient returns a directory-backed Discovery for the server
// at addr over the given network (nil means real TCP).
//
// Deprecated: use NewOverlay with WithDirectory(addr), which wires the
// client, the node and their lifecycle behind one type.
func NewDirectoryClient(network Network, addr string) *DirectoryClient {
	return directory.NewClientOn(network, addr)
}

// DirectoryShardRing deterministically maps supplier keys to registry
// shards by consistent hashing on the chord identifier circle; every
// client builds the same ring from the same shard count.
type DirectoryShardRing = directory.ShardRing

// NewDirectoryShardRing returns the canonical ring over n shards.
func NewDirectoryShardRing(n int) (*DirectoryShardRing, error) { return directory.NewShardRing(n) }

// ShardedDirectoryClient is the sharded directory Discovery backend: the
// registry split across several DirectoryServer instances, with
// registrations routed to the owning shard by consistent hashing,
// candidate lookups fanned out across all shards (a dead shard degrades
// diversity, never the lookup), and lease-style re-registration that
// repopulates a shard returning empty from a crash.
type ShardedDirectoryClient = directory.ShardedClient

// ShardedDirectoryConfig parameterizes a sharded directory client.
type ShardedDirectoryConfig = directory.ShardedConfig

// NewShardedDirectoryClient returns a sharded-directory Discovery over
// the given shard set; hand it to a node via NodeConfig.Discovery.
//
// Deprecated: use NewOverlay with WithDirectory(addrs...) or
// WithShardedDirectory(cfg).
func NewShardedDirectoryClient(cfg ShardedDirectoryConfig) (*ShardedDirectoryClient, error) {
	return directory.NewShardedClient(cfg)
}

// ReshardController is the elastic-directory autoscaling loop: it samples
// per-shard load (lookups per interval) on the shared clock, spawns a
// registry shard when mean load sustains above a high-water mark, drains
// the coldest shard when it sustains below a low-water mark, and announces
// every change as a resharding epoch that watching sharded clients migrate
// to with zero lost registrations and zero lookup misses. Attach one to an
// overlay with WithAutoscale; Start arms it, Close stops it.
type ReshardController = reshard.Controller

// ReshardConfig parameterizes a resharding controller: the sampling
// interval, the load watermarks, the initial shard membership, and the
// Spawn/Retire hooks through which the deployment boots and tears down
// shard servers.
type ReshardConfig = reshard.Config

// ReshardMember is one registry shard under a resharding controller: its
// stable ring name, the address clients dial, and the server whose stats
// feed the load loop.
type ReshardMember = reshard.Member

// NewReshardController validates cfg and returns an idle controller; arm
// the sampling loop with Start and stop it with Close.
func NewReshardController(cfg ReshardConfig) (*ReshardController, error) { return reshard.New(cfg) }

// ChordDiscovery is the decentralized Discovery backend: a wire-level
// Chord ring member (internal/chordnet) that joins on Register, maintains
// successors and fingers via stabilization, and samples candidates by
// routing random-key lookups — no directory server anywhere.
type ChordDiscovery = chordnet.Peer

// ChordDiscoveryConfig parameterizes a chord discovery peer.
type ChordDiscoveryConfig = chordnet.Config

// NewChordDiscovery returns an unstarted chord discovery peer; Start it,
// then hand it to a node as its Discovery.
//
// Deprecated: use NewOverlay with WithChord(cfg), which starts each
// peer's ring endpoint and chains bootstrap membership automatically.
func NewChordDiscovery(cfg ChordDiscoveryConfig) (*ChordDiscovery, error) { return chordnet.New(cfg) }

// MediaFile describes the streamed media item.
type MediaFile = media.File

// Codec produces downgraded segment renditions for the congestion-aware
// data plane's bitrate ladder; see WithCodec.
type Codec = media.Codec

// Declarative scenarios: whole-cluster runs described as data — hosts,
// link schedules, churn schedules, workloads — executed on the virtual
// substrate with invariant checks (internal/scenario).

// Scenario is a declarative cluster scenario: topology, link schedule,
// churn schedule and workload as data. Run it with RunScenario.
type Scenario = scenario.Spec

// ScenarioPeer declares one overlay peer of a scenario.
type ScenarioPeer = scenario.Peer

// ScenarioLink configures the links between two hosts of a scenario; its
// B side may be ScenarioWildcard.
type ScenarioLink = scenario.Link

// ScenarioLinkEvent mutates link configuration at a virtual instant.
type ScenarioLinkEvent = scenario.LinkEvent

// ScenarioChurnEvent schedules churn: a crash, a graceful leave, or a
// join.
type ScenarioChurnEvent = scenario.ChurnEvent

// ScenarioExpect declares a scenario's acceptance envelope.
type ScenarioExpect = scenario.Expect

// Churn actions for ScenarioChurnEvent.
const (
	ScenarioCrash = scenario.Crash
	ScenarioLeave = scenario.Leave
	ScenarioJoin  = scenario.Join
)

// ScenarioWildcard, as a link's B side, means "every other host".
const ScenarioWildcard = scenario.Wildcard

// ScenarioShardHost returns the virtual host name of directory registry
// shard i (shard 0 is the directory host itself). With
// Scenario.DirectoryShards >= 2, churn events may Crash a shard host and
// Join it back.
func ScenarioShardHost(i int) string { return scenario.ShardHost(i) }

// ScenarioBackend selects a scenario's discovery substrate.
type ScenarioBackend = scenario.Backend

// Scenario discovery backends.
const (
	// ScenarioBackendDirectory runs the centralized directory server.
	ScenarioBackendDirectory = scenario.BackendDirectory
	// ScenarioBackendChord runs wire-level chord discovery with no
	// directory server at all.
	ScenarioBackendChord = scenario.BackendChord
)

// ScenarioReport is the outcome of a scenario run: per-requester results,
// shared-axis metric series, and invariant checks (Check).
type ScenarioReport = scenario.Report

// RunScenario executes a scenario on a fresh virtual substrate.
func RunScenario(spec Scenario) (*ScenarioReport, error) { return scenario.Run(spec) }

// ScenarioCatalog returns the named conformance scenarios (RFC 8867-style
// stresses: variable capacity, flash crowd, churn storm, partition-heal,
// ...), each runnable via RunScenario or cmd/p2pscen.
func ScenarioCatalog() []Scenario { return scenario.Catalog() }

// ScenarioByName returns the cataloged scenario with the given name.
func ScenarioByName(name string) (Scenario, bool) { return scenario.ByName(name) }
