package p2pstream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"p2pstream/internal/chordnet"
	"p2pstream/internal/directory"
	"p2pstream/internal/errs"
	"p2pstream/internal/media"
	"p2pstream/internal/node"
	"p2pstream/internal/observe"
)

// Overlay is the single entrypoint to the live streaming overlay: one
// builder that wires nodes, discovery and lifecycle for all three
// discovery backends — the centralized directory (WithDirectory, one
// address), the consistent-hash sharded directory (WithDirectory with
// several addresses, or WithShardedDirectory for full control; elastic
// under a resharding controller via WithAutoscale or WithShardEpochs) and
// the decentralized wire-level Chord ring (WithChord) — behind one type.
//
//	ov, err := p2pstream.NewOverlay(file,
//		p2pstream.WithDirectory("127.0.0.1:7000"),
//	)
//	defer ov.Close()
//	seed, err := ov.Seed(ctx, p2pstream.OverlayPeer{ID: "s1", Class: 1})
//	req, err := ov.Requester(ctx, p2pstream.OverlayPeer{ID: "r1", Class: 2})
//	report, err := req.RequestUntilAdmitted(ctx, "", 10)
//
// Every peer the overlay creates is started, tracked, and torn down by
// Close (newest first: requesters before the seeds they stream from).
// The request path is context-first throughout — cancellation and
// deadlines abort dials, probes, sessions and discovery RPCs — and
// failures are typed: branch with errors.Is on ErrRejected,
// ErrNoSuppliers, ErrClosed, ErrAllShardsDown.
//
// WithClock and WithNetwork (or WithNetworkFor, for per-host virtual
// networks) swap the substrate: the same overlay runs over real TCP on
// the wall clock or inside a deterministic virtual cluster. WithObserver
// installs one unified observer across every component the overlay wires.
type Overlay struct {
	cfg overlayConfig

	// chordMu serializes chord-backend peer creation (see newPeer).
	chordMu sync.Mutex

	mu         sync.Mutex
	nodes      []*Node
	boots      []string          // chord endpoints of overlay-created seed peers
	chordAddrs map[string]string // chord endpoint per created peer ID
	seq        int64
	closed     bool
}

// overlayBackend discriminates the configured discovery substrate.
type overlayBackend int

const (
	backendNone overlayBackend = iota
	backendDirectory
	backendSharded
	backendChord
)

type overlayConfig struct {
	file         *media.File
	objects      []*media.File
	cacheBudget  int64
	sessionSlots int
	numClasses   Class
	policy       Policy
	m            int
	tout         time.Duration
	backoff      BackoffConfig
	clk          Clock
	network      Network
	netFor       func(hostID string) Network
	observer     Observer
	seed         int64
	noAdapt      bool
	priority     int
	codec        media.Codec
	buffer       time.Duration

	backend overlayBackend
	dirAddr string
	sharded ShardedDirectoryConfig
	// shardEpochs subscribes every sharded client to dir-epoch pushes
	// (WithShardEpochs); autoscale additionally boots each client from the
	// controller's live epoch and shard set (WithAutoscale).
	shardEpochs bool
	autoscale   *ReshardController
	chord       ChordDiscoveryConfig
	// chordReplication and chordVirtualNodes override the WithChord
	// template's Replication and VirtualNodes regardless of option order
	// (zero = keep the template's value).
	chordReplication  int
	chordVirtualNodes int
}

// OverlayOption configures an Overlay.
type OverlayOption func(*overlayConfig) error

// WithDirectory selects directory discovery: one address runs the
// centralized client, several run the consistent-hash sharded client over
// the listed shards (every peer of one deployment must list the same
// addresses in the same order).
func WithDirectory(addrs ...string) OverlayOption {
	return func(c *overlayConfig) error {
		if c.backend != backendNone {
			return errors.New("p2pstream: overlay discovery backend configured twice")
		}
		switch len(addrs) {
		case 0:
			return errors.New("p2pstream: WithDirectory needs at least one address")
		case 1:
			c.backend = backendDirectory
			c.dirAddr = addrs[0]
		default:
			c.backend = backendSharded
			c.sharded = ShardedDirectoryConfig{Addrs: append([]string(nil), addrs...)}
		}
		return nil
	}
}

// WithShardedDirectory selects sharded directory discovery with explicit
// lease tuning. The config's Network, Clock, Seed and Observer fields are
// filled per peer from the overlay's; set Addrs (and Refresh, if the
// default lease period does not suit the deployment).
func WithShardedDirectory(cfg ShardedDirectoryConfig) OverlayOption {
	return func(c *overlayConfig) error {
		if c.backend != backendNone {
			return errors.New("p2pstream: overlay discovery backend configured twice")
		}
		if len(cfg.Addrs) == 0 {
			return errors.New("p2pstream: WithShardedDirectory needs shard addresses")
		}
		c.backend = backendSharded
		c.sharded = cfg
		return nil
	}
}

// WithShardEpochs subscribes every sharded directory client this overlay
// creates to dir-epoch pushes from its shards: when an externally managed
// elastic deployment (p2pdir -autoscale, or any ReshardController in
// another process) flips the shard set, each client re-registers its moved
// registrations in one batched round and double-reads candidates from the
// old and new shard sets for one lease interval, so no lookup misses
// mid-migration. Requires the sharded backend (WithDirectory with several
// addresses, or WithShardedDirectory). Implied by WithAutoscale.
func WithShardEpochs() OverlayOption {
	return func(c *overlayConfig) error { c.shardEpochs = true; return nil }
}

// WithAutoscale attaches a resharding controller (NewReshardController) to
// the overlay: every peer's sharded directory client boots from the
// controller's live epoch and shard set — not a fixed address list — and
// watches for epoch pushes, migrating its registrations as the controller
// grows and drains the registry. On its own it selects the sharded
// backend; combine with WithShardedDirectory only to tune the lease
// period (the controller overrides its Addrs, Names and Epoch per peer).
// The controller's lifecycle stays with the caller: Start it before
// creating peers and Close it after the overlay.
func WithAutoscale(ctrl *ReshardController) OverlayOption {
	return func(c *overlayConfig) error {
		if ctrl == nil {
			return errors.New("p2pstream: WithAutoscale needs a non-nil controller")
		}
		c.autoscale = ctrl
		return nil
	}
}

// WithChord selects decentralized chord discovery. cfg is a template: its
// Bootstrap, ListenAddr, Stabilize, Successors, MaxHops, Replication and
// VirtualNodes apply to every peer, while ID, Class, Network, Clock, Seed
// and Observer are filled per peer. Seeds created by this overlay
// automatically become bootstrap members for later peers (the first seed
// with no bootstrap founds the ring), so a single-process cluster needs
// no explicit bootstrap at all.
func WithChord(cfg ChordDiscoveryConfig) OverlayOption {
	return func(c *overlayConfig) error {
		if c.backend != backendNone {
			return errors.New("p2pstream: overlay discovery backend configured twice")
		}
		c.backend = backendChord
		c.chord = cfg
		return nil
	}
}

// WithChordReplication sets the chord ring's successor replication degree:
// every peer's registration records are pushed to the k members after
// their owner, and lookups fail over to those replicas when the owner is
// unreachable — closing the churn window a crash otherwise opens until
// stabilization splices the corpse out. Overrides the WithChord template's
// Replication field regardless of option order; k = 0 keeps the template's
// value (the chordnet default).
func WithChordReplication(k int) OverlayOption {
	return func(c *overlayConfig) error {
		if k < 0 {
			return fmt.Errorf("p2pstream: WithChordReplication(%d): want >= 0", k)
		}
		c.chordReplication = k
		return nil
	}
}

// WithChordVirtualNodes sets how many deterministic ring positions each
// chord member claims (hash(name, i) for i < v): arcs — and with them the
// random-key sampling probability — equalize as v grows, flattening the
// supplier-selection skew a single-position ring exhibits. Overrides the
// WithChord template's VirtualNodes field regardless of option order;
// v = 0 keeps the template's value (the chordnet default).
func WithChordVirtualNodes(v int) OverlayOption {
	return func(c *overlayConfig) error {
		if v < 0 {
			return fmt.Errorf("p2pstream: WithChordVirtualNodes(%d): want >= 0", v)
		}
		c.chordVirtualNodes = v
		return nil
	}
}

// WithLibrary selects multi-object mode: the overlay carries the listed
// media objects instead of the single file handed to NewOverlay (which
// must then be nil). Every peer knows the full catalog; which objects a
// peer initially holds is per peer (OverlayPeer.Held — seeds default to
// the whole catalog), and requesters name the object per request
// (Node.Request / Node.RequestUntilAdmitted). Supplier registration,
// candidate discovery and admission run independently per object.
func WithLibrary(files ...*MediaFile) OverlayOption {
	return func(c *overlayConfig) error {
		if len(files) == 0 {
			return errors.New("p2pstream: WithLibrary needs at least one media object")
		}
		c.objects = append([]*media.File(nil), files...)
		return nil
	}
}

// WithCacheBudget bounds each peer's media library to the given number of
// bytes: when caching one more object would exceed the budget, the least
// recently used unpinned object is evicted and its supplier registration
// withdrawn gracefully (in-flight sessions drain first). Zero means
// unbounded (default).
func WithCacheBudget(bytes int64) OverlayOption {
	return func(c *overlayConfig) error {
		if bytes < 0 {
			return fmt.Errorf("p2pstream: cache budget %d is negative", bytes)
		}
		c.cacheBudget = bytes
		return nil
	}
}

// WithSessionSlots caps how many supplying sessions a peer serves
// concurrently across all of its objects — the peer's single out-bound
// class budget shared by every per-object supplier. Zero means the
// per-class default of one concurrent session (default).
func WithSessionSlots(k int) OverlayOption {
	return func(c *overlayConfig) error {
		if k < 0 {
			return fmt.Errorf("p2pstream: session slots %d is negative", k)
		}
		c.sessionSlots = k
		return nil
	}
}

// WithClock runs every overlay component on clk (default: the wall clock).
func WithClock(clk Clock) OverlayOption {
	return func(c *overlayConfig) error { c.clk = clk; return nil }
}

// WithNetwork provides every overlay component's listeners and dials
// (default: real TCP).
func WithNetwork(nw Network) OverlayOption {
	return func(c *overlayConfig) error { c.network = nw; return nil }
}

// WithNetworkFor provides each peer's network by host ID — the idiom for
// virtual clusters, where every peer lives on its own named virtual host:
//
//	p2pstream.WithNetworkFor(func(id string) p2pstream.Network { return vnet.Host(id) })
func WithNetworkFor(f func(hostID string) Network) OverlayOption {
	return func(c *overlayConfig) error { c.netFor = f; return nil }
}

// WithObserver installs one observer across every component the overlay
// wires: nodes (write failures, probes, sessions), sharded directory
// clients (per-shard fan-out legs) and chord peers (lookup cost).
func WithObserver(o Observer) OverlayOption {
	return func(c *overlayConfig) error { c.observer = o; return nil }
}

// WithClasses sets K, the number of bandwidth classes (default 4).
func WithClasses(k Class) OverlayOption {
	return func(c *overlayConfig) error { c.numClasses = k; return nil }
}

// WithPolicy selects the admission policy (default DAC).
func WithPolicy(p Policy) OverlayOption {
	return func(c *overlayConfig) error { c.policy = p; return nil }
}

// WithProbeFanout sets M, the candidates probed per admission attempt
// (default 8).
func WithProbeFanout(m int) OverlayOption {
	return func(c *overlayConfig) error { c.m = m; return nil }
}

// WithIdleTimeout sets TOut, the supplier idle elevation timeout
// (default 2s).
func WithIdleTimeout(d time.Duration) OverlayOption {
	return func(c *overlayConfig) error { c.tout = d; return nil }
}

// WithBackoff sets the requester retry parameters (default 500ms, ×2).
func WithBackoff(b BackoffConfig) OverlayOption {
	return func(c *overlayConfig) error { c.backoff = b; return nil }
}

// WithSeed fixes the overlay's randomness root; per-peer seeds derive from
// it (default 1).
func WithSeed(seed int64) OverlayOption {
	return func(c *overlayConfig) error { c.seed = seed; return nil }
}

// WithoutAdaptation disables the congestion-aware data plane: suppliers
// blast each segment as a single burst on its schedule instead of pacing
// at the bandwidth estimate and stepping down the bitrate ladder under
// sustained congestion. Useful as an experiment control; on a shared
// bottleneck the unadapted plane builds standing queues and stalls.
func WithoutAdaptation() OverlayOption {
	return func(c *overlayConfig) error { c.noAdapt = true; return nil }
}

// WithPriority biases the ABR downgrade decision for sessions requested
// by this overlay's peers: each priority level doubles how long congestion
// must sustain before a supplier steps the stream down a bitrate class, so
// higher-priority flows hold quality while best-effort flows yield first
// (default 0).
func WithPriority(p int) OverlayOption {
	return func(c *overlayConfig) error {
		if p < 0 {
			return fmt.Errorf("p2pstream: priority %d is negative", p)
		}
		c.priority = p
		return nil
	}
}

// WithCodec supplies the rendition codec the data plane downgrades with
// (default a perfect transcoder producing exact fractional-size
// renditions).
func WithCodec(codec Codec) OverlayOption {
	return func(c *overlayConfig) error { c.codec = codec; return nil }
}

// WithStartupBuffer adds client-side startup buffering on top of the
// Theorem 1 playback deadline: continuity is verified at n·δt plus one
// segment-time plus this. Sessions expecting congestion set a few
// segment-times so the queue transient before the bitrate ladder reacts
// drains from buffer instead of stalling playback (default 0).
func WithStartupBuffer(d time.Duration) OverlayOption {
	return func(c *overlayConfig) error {
		if d < 0 {
			return fmt.Errorf("p2pstream: startup buffer %v is negative", d)
		}
		c.buffer = d
		return nil
	}
}

// NewOverlay builds an overlay for the given media item. Exactly one
// discovery option (WithDirectory, WithShardedDirectory or WithChord) is
// required. For a multi-object overlay, pass a nil file and WithLibrary.
func NewOverlay(file *MediaFile, opts ...OverlayOption) (*Overlay, error) {
	cfg := overlayConfig{
		file:       file,
		numClasses: 4,
		policy:     DAC,
		m:          8,
		tout:       2 * time.Second,
		backoff:    BackoffConfig{Base: 500 * time.Millisecond, Factor: 2},
		seed:       1,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if file == nil && len(cfg.objects) == 0 {
		return nil, errors.New("p2pstream: overlay needs a media file (or WithLibrary)")
	}
	if file != nil && len(cfg.objects) > 0 {
		return nil, errors.New("p2pstream: pass WithLibrary with a nil file, not both")
	}
	if cfg.autoscale != nil && cfg.backend == backendNone {
		cfg.backend = backendSharded
	}
	if cfg.backend == backendNone {
		return nil, errors.New("p2pstream: overlay needs a discovery backend (WithDirectory, WithShardedDirectory, WithAutoscale or WithChord)")
	}
	if (cfg.chordReplication > 0 || cfg.chordVirtualNodes > 0) && cfg.backend != backendChord {
		return nil, errors.New("p2pstream: WithChordReplication/WithChordVirtualNodes need WithChord")
	}
	if cfg.autoscale != nil && cfg.backend != backendSharded {
		return nil, errors.New("p2pstream: WithAutoscale needs the sharded directory backend (it selects one when no backend is configured)")
	}
	if cfg.shardEpochs && cfg.backend != backendSharded {
		return nil, errors.New("p2pstream: WithShardEpochs needs the sharded directory backend")
	}
	return &Overlay{cfg: cfg}, nil
}

// OverlayPeer declares one peer of the overlay.
type OverlayPeer struct {
	// ID is the peer's unique overlay name (and, on a virtual network
	// configured with WithNetworkFor, its host name).
	ID string
	// Class is the peer's bandwidth class.
	Class Class
	// ListenAddr is the peer's overlay listener (default "127.0.0.1:0").
	ListenAddr string
	// DiscoveryListenAddr is the peer's chord ring endpoint (chord backend
	// only; default the WithChord template's ListenAddr, else any port).
	DiscoveryListenAddr string
	// Seed overrides the peer's derived randomness seed when non-zero.
	Seed int64
	// Held names the objects a multi-object seed initially holds and
	// supplies (must be a subset of the WithLibrary catalog; empty means
	// the whole catalog). Ignored for requesters and single-file overlays.
	Held []string
}

// Seed creates, starts and tracks a seed peer: it possesses the complete
// media file and registers as a supplying peer immediately (ctx bounds the
// registration). Under chord discovery the peer's ring endpoint becomes a
// bootstrap member for peers created later.
func (o *Overlay) Seed(ctx context.Context, p OverlayPeer) (*Node, error) {
	return o.newPeer(ctx, p, true)
}

// Requester creates, starts and tracks a requesting peer; drive it with
// Request or RequestUntilAdmitted.
func (o *Overlay) Requester(ctx context.Context, p OverlayPeer) (*Node, error) {
	return o.newPeer(ctx, p, false)
}

// Nodes returns the overlay's live tracked peers, in creation order.
func (o *Overlay) Nodes() []*Node {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Node(nil), o.nodes...)
}

// DiscoveryEndpoint returns the chord ring endpoint of the named peer —
// the address other processes hand to WithChord as Bootstrap (or p2pnode
// as -chord-bootstrap). Empty under the directory backends or for unknown
// peers.
func (o *Overlay) DiscoveryEndpoint(id string) string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.chordAddrs[id]
}

// Close tears the whole overlay down: every tracked peer is closed, newest
// first (requesters before the seeds they stream from), each closing its
// own discovery backend with it. Idempotent.
func (o *Overlay) Close() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	nodes := o.nodes
	o.nodes = nil
	o.mu.Unlock()
	var err error
	for i := len(nodes) - 1; i >= 0; i-- {
		if cerr := nodes[i].Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// networkFor resolves one peer's network.
func (o *Overlay) networkFor(id string) Network {
	if o.cfg.netFor != nil {
		return o.cfg.netFor(id)
	}
	return o.cfg.network
}

// nextSeed derives a per-peer randomness seed.
func (o *Overlay) nextSeed(p OverlayPeer) int64 {
	if p.Seed != 0 {
		return p.Seed
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.seq++
	return o.cfg.seed + o.seq*1009
}

// newPeer wires one peer: discovery backend, node, start, tracking.
func (o *Overlay) newPeer(ctx context.Context, p OverlayPeer, isSeed bool) (*Node, error) {
	o.mu.Lock()
	closed := o.closed
	o.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("p2pstream: overlay %w", errs.ErrClosed)
	}
	if p.ID == "" {
		return nil, errors.New("p2pstream: overlay peer needs an ID")
	}
	nw := o.networkFor(p.ID)
	seed := o.nextSeed(p)

	var disc Discovery
	var chordPeer *ChordDiscovery
	switch o.cfg.backend {
	case backendDirectory:
		disc = directory.NewClientOn(nw, o.cfg.dirAddr)
	case backendSharded:
		scfg := o.cfg.sharded
		scfg.Network = nw
		scfg.Clock = o.cfg.clk
		scfg.Seed = seed
		scfg.Observer = o.cfg.observer
		if o.cfg.shardEpochs {
			scfg.WatchEpochs = true
		}
		if ctrl := o.cfg.autoscale; ctrl != nil {
			// Boot from the controller's live state: a peer created after
			// a flip must route by the current shard set, not the one the
			// overlay was configured with.
			epoch, members := ctrl.Snapshot()
			addrs := make([]string, len(members))
			names := make([]string, len(members))
			for i, m := range members {
				addrs[i], names[i] = m.Addr, m.Name
			}
			scfg.Addrs, scfg.Names, scfg.Epoch = addrs, names, epoch
			scfg.WatchEpochs = true
		}
		sc, err := directory.NewShardedClient(scfg)
		if err != nil {
			return nil, err
		}
		disc = sc
	case backendChord:
		// Serialized: two concurrent seeds that both snapshotted an empty
		// bootstrap list would each found a separate singleton ring and
		// partition the overlay. Creation is cold path; one at a time.
		o.chordMu.Lock()
		defer o.chordMu.Unlock()
		ccfg := o.cfg.chord
		ccfg.ID = p.ID
		ccfg.Class = p.Class
		ccfg.Network = nw
		ccfg.Clock = o.cfg.clk
		ccfg.Seed = seed
		ccfg.Observer = o.cfg.observer
		if o.cfg.chordReplication > 0 {
			ccfg.Replication = o.cfg.chordReplication
		}
		if o.cfg.chordVirtualNodes > 0 {
			ccfg.VirtualNodes = o.cfg.chordVirtualNodes
		}
		if p.DiscoveryListenAddr != "" {
			ccfg.ListenAddr = p.DiscoveryListenAddr
		}
		o.mu.Lock()
		ccfg.Bootstrap = append(append([]string(nil), o.cfg.chord.Bootstrap...), o.boots...)
		o.mu.Unlock()
		cp, err := chordnet.New(ccfg)
		if err != nil {
			return nil, err
		}
		if err := cp.Start(); err != nil {
			return nil, err
		}
		disc = cp
		chordPeer = cp
	}

	ncfg := node.Config{
		ID:           p.ID,
		Class:        p.Class,
		NumClasses:   o.cfg.numClasses,
		Policy:       o.cfg.policy,
		Discovery:    disc,
		File:         o.cfg.file,
		Objects:      o.cfg.objects,
		Held:         p.Held,
		CacheBudget:  o.cfg.cacheBudget,
		SessionSlots: o.cfg.sessionSlots,
		M:            o.cfg.m,
		TOut:         o.cfg.tout,
		Backoff:      o.cfg.backoff,
		ListenAddr:   p.ListenAddr,
		Seed:         seed,
		Clock:        o.cfg.clk,
		Network:      nw,
		Observer:     o.cfg.observer,
		NoAdapt:      o.cfg.noAdapt,
		Priority:     o.cfg.priority,
		Codec:        o.cfg.codec,
		ExtraBuffer:  o.cfg.buffer,
	}
	var n *Node
	var err error
	if isSeed {
		n, err = node.NewSeed(ncfg)
	} else {
		n, err = node.NewRequester(ncfg)
	}
	if err != nil {
		// The node never took ownership of the discovery backend.
		if disc != nil {
			disc.Close()
		}
		return nil, err
	}
	if err := n.Start(ctx); err != nil {
		n.Close()
		return nil, err
	}

	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		n.Close()
		return nil, fmt.Errorf("p2pstream: overlay %w", errs.ErrClosed)
	}
	o.nodes = append(o.nodes, n)
	if chordPeer != nil {
		if o.chordAddrs == nil {
			o.chordAddrs = make(map[string]string)
		}
		o.chordAddrs[p.ID] = chordPeer.Addr()
		if isSeed {
			o.boots = append(o.boots, chordPeer.Addr())
		}
	}
	o.mu.Unlock()
	return n, nil
}

// The unified observability and error surface.

// Observer receives typed events from every overlay component — write
// failures, lookup cost, per-shard fan-out legs, probes and sessions
// served. Install one with WithObserver (or per component via the internal
// configs). See ObserverEvent.
type Observer = observe.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = observe.Func

// ObserverEvent is one observable occurrence; its Type field discriminates.
type ObserverEvent = observe.Event

// EventType discriminates observer events.
type EventType = observe.Type

// Observer event types.
const (
	// EventWriteError: a reply write failed mid-exchange.
	EventWriteError = observe.WriteError
	// EventLookupDone: a discovery lookup completed (Hops, Latency).
	EventLookupDone = observe.LookupDone
	// EventShardLookup: one shard's leg of a sharded fan-out (Shard,
	// Latency, Err).
	EventShardLookup = observe.ShardLookup
	// EventSessionServed: the supplier side completed one session.
	EventSessionServed = observe.SessionServed
	// EventProbeServed: the supplier side answered one admission probe.
	EventProbeServed = observe.ProbeServed
	// EventBitrateDowngrade: a supplying session stepped one bitrate class
	// down the ladder under sustained congestion (Quality).
	EventBitrateDowngrade = observe.BitrateDowngrade
	// EventObjectEvicted: a node's bounded library evicted one media
	// object (Object).
	EventObjectEvicted = observe.ObjectEvicted
	// EventSupplierWithdrawn: a node withdrew its supplier registration
	// for one object, the graceful tail of an eviction (Object).
	EventSupplierWithdrawn = observe.SupplierWithdrawn
	// EventReplicaAnswered: a chord lookup was answered by a replica after
	// the key's owner proved unreachable — the fail-over path that closes
	// the churn window (Hops). See WithChordReplication.
	EventReplicaAnswered = observe.ReplicaAnswered
	// EventLookupMiss: a node's candidate lookup came back empty — under
	// replication this means the churn window opened.
	EventLookupMiss = observe.LookupMiss
	// EventEpochFlip: the resharding controller flipped the directory
	// deployment to a new epoch (Epoch; Count is the new shard count). See
	// WithAutoscale.
	EventEpochFlip = observe.EpochFlip
	// EventShardAdded: the resharding controller spawned a registry shard
	// under sustained load (Object is the shard's name, Epoch the epoch
	// announcing it).
	EventShardAdded = observe.ShardAdded
	// EventShardDrained: the resharding controller drained the coldest
	// registry shard under sustained underload (Object, Epoch).
	EventShardDrained = observe.ShardDrained
	// EventReshardMove: a sharded client finished migrating its
	// registrations after an epoch flip (Epoch; Count is how many
	// registrations changed owner, Latency the flip convergence time).
	EventReshardMove = observe.ReshardMove
)

// MultiObserver fans events out to several observers (nils skipped).
func MultiObserver(obs ...Observer) Observer { return observe.Multi(obs...) }

// Typed, errors.Is-able failure sentinels of the request/discovery path.
// Every layer wraps these with context; context.Canceled and
// context.DeadlineExceeded pass through cancellation untouched.
var (
	// ErrRejected: the admission attempt failed (retryable with backoff).
	ErrRejected = errs.ErrRejected
	// ErrNoSuppliers: the candidate lookup came back empty (retryable).
	ErrNoSuppliers = errs.ErrNoSuppliers
	// ErrClosed: the component (node, overlay, discovery client, server)
	// is closed.
	ErrClosed = errs.ErrClosed
	// ErrAllShardsDown: every registry shard of a sharded lookup failed.
	ErrAllShardsDown = errs.ErrAllShardsDown
)

// NodeStats is the atomic snapshot returned by Node.Stats.
type NodeStats = node.Stats
